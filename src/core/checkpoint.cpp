#include "core/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>

#include "common/logging.h"
#include "core/distributed_trainer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neo::core {

namespace {

constexpr uint32_t kDeltaMagic = 0x44454C54;     // 'DELT'
constexpr uint32_t kBaselineMagic = 0x4E434B50;  // 'NCKP'
constexpr uint32_t kDeltaStreamMagic = 0x4E434B44;  // 'NCKD'

/** StateFloatsPerRow for a given optimizer config and shard width. */
size_t
StateFloatsPerRowFor(const ops::SparseOptimizerConfig& config, int64_t dim)
{
    // A one-row probe optimizer is the cheapest way to keep the layout
    // definition in exactly one place (SparseOptimizer).
    return ops::SparseOptimizer(config, 1, dim).StateFloatsPerRow();
}

/** Export every row's optimizer state into one flat vector. */
std::vector<float>
ExportAllRowState(const ops::SparseOptimizer& opt, int64_t rows)
{
    const size_t sfpr = opt.StateFloatsPerRow();
    std::vector<float> state(static_cast<size_t>(rows) * sfpr);
    for (int64_t r = 0; r < rows; r++) {
        opt.ExportRowState(r, state.data() + static_cast<size_t>(r) * sfpr);
    }
    return state;
}

/** Write `bytes` to `path` atomically (temp file + rename). */
void
WriteFileAtomic(const std::filesystem::path& path,
                const std::vector<uint8_t>& bytes)
{
    const std::filesystem::path tmp = path.string() + ".tmp";
    {
        std::FILE* f = std::fopen(tmp.c_str(), "wb");
        NEO_REQUIRE(f != nullptr, "cannot open for write: ", tmp.string());
        const size_t written =
            std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
        NEO_REQUIRE(written == bytes.size(), "short write to ",
                    tmp.string());
    }
    std::filesystem::rename(tmp, path);
}

std::vector<uint8_t>
ReadFileBytes(const std::filesystem::path& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    NEO_REQUIRE(f != nullptr, "cannot open for read: ", path.string());
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    const size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    NEO_REQUIRE(read == bytes.size(), "short read from ", path.string());
    return bytes;
}

/** Zero-padded delta file name, sortable by sequence. */
std::string
DeltaFileName(size_t seq)
{
    char name[32];
    std::snprintf(name, sizeof(name), "delta_%05zu.bin", seq);
    return name;
}

}  // namespace

DeltaCheckpointer::DeltaCheckpointer(ops::EmbeddingTable* table)
    : table_(table), reference_(*table)
{
    NEO_REQUIRE(table_ != nullptr, "null table");
}

std::vector<uint8_t>
DeltaCheckpointer::WriteBaseline()
{
    BinaryWriter writer;
    table_->Save(writer);
    reference_ = *table_;
    delta_seq_ = 0;
    return writer.buffer();
}

std::vector<uint8_t>
DeltaCheckpointer::WriteDelta()
{
    const int64_t rows = table_->rows();
    const int64_t dim = table_->dim();
    NEO_REQUIRE(reference_.rows() == rows && reference_.dim() == dim,
                "reference/table shape drift");

    std::vector<int64_t> changed;
    std::vector<float> payload;
    std::vector<float> current(static_cast<size_t>(dim));
    std::vector<float> previous(static_cast<size_t>(dim));
    for (int64_t r = 0; r < rows; r++) {
        table_->ReadRow(r, current.data());
        reference_.ReadRow(r, previous.data());
        if (std::memcmp(current.data(), previous.data(),
                        static_cast<size_t>(dim) * sizeof(float)) != 0) {
            changed.push_back(r);
            payload.insert(payload.end(), current.begin(), current.end());
            reference_.WriteRow(r, current.data());
        }
    }
    last_delta_rows_ = changed.size();

    BinaryWriter writer;
    writer.Write<uint32_t>(kDeltaMagic);
    writer.Write<int64_t>(rows);
    writer.Write<int64_t>(dim);
    writer.Write<uint64_t>(delta_seq_++);
    writer.WriteVector(changed);
    writer.WriteVector(payload);
    return writer.buffer();
}

ops::EmbeddingTable
DeltaCheckpointer::Restore(const std::vector<uint8_t>& baseline,
                           const std::vector<std::vector<uint8_t>>& deltas)
{
    BinaryReader base_reader(baseline);
    ops::EmbeddingTable table = ops::EmbeddingTable::Load(base_reader);
    uint64_t expected_seq = 0;
    for (const auto& delta : deltas) {
        BinaryReader reader(delta);
        NEO_REQUIRE(reader.Read<uint32_t>() == kDeltaMagic,
                    "bad delta magic");
        const int64_t rows = reader.Read<int64_t>();
        const int64_t dim = reader.Read<int64_t>();
        NEO_REQUIRE(rows == table.rows() && dim == table.dim(),
                    "delta shape mismatch: delta is ", rows, "x", dim,
                    ", table is ", table.rows(), "x", table.dim());
        const uint64_t seq = reader.Read<uint64_t>();
        NEO_REQUIRE(seq == expected_seq,
                    "delta out of order: expected sequence ", expected_seq,
                    ", got ", seq);
        expected_seq++;
        const auto changed = reader.ReadVector<int64_t>();
        const auto payload = reader.ReadVector<float>();
        NEO_REQUIRE(payload.size() ==
                        changed.size() * static_cast<size_t>(dim),
                    "delta payload size mismatch");
        for (size_t i = 0; i < changed.size(); i++) {
            NEO_REQUIRE(changed[i] >= 0 && changed[i] < rows,
                        "delta row id ", changed[i], " out of range [0, ",
                        rows, ")");
            table.WriteRow(changed[i],
                           payload.data() + i * static_cast<size_t>(dim));
        }
    }
    return table;
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

CheckpointStore::CheckpointStore(std::string directory)
    : dir_(std::move(directory))
{
    NEO_REQUIRE(!dir_.empty(), "empty checkpoint directory");
    std::filesystem::create_directories(dir_);
}

std::string
CheckpointStore::RankDir(int rank) const
{
    return (std::filesystem::path(dir_) / ("rank_" + std::to_string(rank)))
        .string();
}

void
CheckpointStore::PutBaseline(int rank, std::vector<uint8_t> bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    generation_++;
    if (!dir_.empty()) {
        // A new baseline supersedes the rank's whole chain on disk too.
        const std::filesystem::path rank_dir(RankDir(rank));
        std::filesystem::remove_all(rank_dir);
        std::filesystem::create_directories(rank_dir);
        WriteFileAtomic(rank_dir / "baseline.bin", bytes);
        return;
    }
    Entry& entry = entries_[rank];
    entry.baseline = std::move(bytes);
    entry.deltas.clear();
}

void
CheckpointStore::AppendDelta(int rank, std::vector<uint8_t> bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    generation_++;
    if (!dir_.empty()) {
        const std::filesystem::path rank_dir(RankDir(rank));
        NEO_REQUIRE(std::filesystem::exists(rank_dir / "baseline.bin"),
                    "delta appended before any baseline for rank ", rank);
        size_t seq = 0;
        while (std::filesystem::exists(rank_dir / DeltaFileName(seq))) {
            seq++;
        }
        WriteFileAtomic(rank_dir / DeltaFileName(seq), bytes);
        return;
    }
    const auto it = entries_.find(rank);
    NEO_REQUIRE(it != entries_.end(),
                "delta appended before any baseline for rank ", rank);
    it->second.deltas.push_back(std::move(bytes));
}

std::vector<uint8_t>
CheckpointStore::Baseline(int rank) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!dir_.empty()) {
        const std::filesystem::path file =
            std::filesystem::path(RankDir(rank)) / "baseline.bin";
        NEO_REQUIRE(std::filesystem::exists(file),
                    "no baseline stored for rank ", rank);
        return ReadFileBytes(file);
    }
    const auto it = entries_.find(rank);
    NEO_REQUIRE(it != entries_.end(), "no baseline stored for rank ", rank);
    return it->second.baseline;
}

std::vector<std::vector<uint8_t>>
CheckpointStore::Deltas(int rank) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!dir_.empty()) {
        const std::filesystem::path rank_dir(RankDir(rank));
        NEO_REQUIRE(std::filesystem::exists(rank_dir / "baseline.bin"),
                    "no checkpoint stored for rank ", rank);
        std::vector<std::vector<uint8_t>> deltas;
        for (size_t seq = 0;
             std::filesystem::exists(rank_dir / DeltaFileName(seq)); seq++) {
            deltas.push_back(ReadFileBytes(rank_dir / DeltaFileName(seq)));
        }
        return deltas;
    }
    const auto it = entries_.find(rank);
    NEO_REQUIRE(it != entries_.end(), "no checkpoint stored for rank ", rank);
    return it->second.deltas;
}

std::vector<int>
CheckpointStore::Ranks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<int> ranks;
    if (!dir_.empty()) {
        for (const auto& entry :
             std::filesystem::directory_iterator(dir_)) {
            const std::string name = entry.path().filename().string();
            if (entry.is_directory() && name.rfind("rank_", 0) == 0 &&
                std::filesystem::exists(entry.path() / "baseline.bin")) {
                ranks.push_back(std::stoi(name.substr(5)));
            }
        }
        std::sort(ranks.begin(), ranks.end());
        return ranks;
    }
    ranks.reserve(entries_.size());
    for (const auto& [rank, entry] : entries_) {
        ranks.push_back(rank);
    }
    return ranks;
}

uint64_t
CheckpointStore::TotalBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    if (!dir_.empty()) {
        for (const auto& entry :
             std::filesystem::recursive_directory_iterator(dir_)) {
            if (entry.is_regular_file()) {
                total += entry.file_size();
            }
        }
        return total;
    }
    for (const auto& [rank, entry] : entries_) {
        total += entry.baseline.size();
        for (const auto& delta : entry.deltas) {
            total += delta.size();
        }
    }
    return total;
}

uint64_t
CheckpointStore::Generation() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return generation_;
}

// ---------------------------------------------------------------------------
// DistributedCheckpointer
// ---------------------------------------------------------------------------

DistributedCheckpointer::DistributedCheckpointer(DistributedDlrm& trainer,
                                                 CheckpointStore& store)
    : trainer_(trainer), store_(store)
{
}

void
DistributedCheckpointer::AgreeEpoch()
{
    // All ranks propose epoch_ + 1; the AllReduce sum equals
    // world * (epoch_ + 1) iff every rank agrees — any rank entering with
    // a different epoch (missed or doubled checkpoint) is detected.
    const uint64_t next = epoch_ + 1;
    float sum = static_cast<float>(next);
    trainer_.pg_.AllReduceSum(&sum, 1);
    const float expected =
        static_cast<float>(next) * static_cast<float>(trainer_.world_);
    NEO_REQUIRE(sum == expected,
                "checkpoint epoch divergence across ranks: expected sum ",
                expected, ", got ", sum);
    epoch_ = next;
}

void
DistributedCheckpointer::WriteBaseline()
{
    NEO_TRACE_SPAN("checkpoint_baseline", "recovery");
    AgreeEpoch();

    BinaryWriter writer;
    writer.Write<uint32_t>(kBaselineMagic);
    writer.Write<int32_t>(trainer_.rank_);
    writer.Write<uint64_t>(epoch_);
    const uint64_t num_entries =
        trainer_.shards_.size() +
        (trainer_.rank_ == 0 ? trainer_.dp_tables_.size() : 0);
    writer.Write<uint64_t>(num_entries);

    shard_refs_.clear();
    for (const auto& shard : trainer_.shards_) {
        writer.Write<int32_t>(shard.meta.table);
        writer.Write<uint8_t>(0);  // is_dp
        writer.Write<int64_t>(shard.meta.row_begin);
        writer.Write<int64_t>(shard.meta.row_end);
        writer.Write<int64_t>(shard.meta.col_begin);
        writer.Write<int64_t>(shard.meta.col_end);
        writer.Write<uint32_t>(
            static_cast<uint32_t>(shard.optimizer.StateFloatsPerRow()));
        shard.table.Save(writer);
        auto opt_state =
            ExportAllRowState(shard.optimizer, shard.table.rows());
        writer.WriteVector(opt_state);
        shard_refs_.push_back({shard.table, std::move(opt_state)});
    }
    dp_refs_.clear();
    if (trainer_.rank_ == 0) {
        for (const auto& dp : trainer_.dp_tables_) {
            writer.Write<int32_t>(dp.table);
            writer.Write<uint8_t>(1);  // is_dp
            writer.Write<int64_t>(0);
            writer.Write<int64_t>(dp.replica.rows());
            writer.Write<int64_t>(0);
            writer.Write<int64_t>(dp.replica.dim());
            writer.Write<uint32_t>(
                static_cast<uint32_t>(dp.optimizer.StateFloatsPerRow()));
            dp.replica.Save(writer);
            auto opt_state =
                ExportAllRowState(dp.optimizer, dp.replica.rows());
            writer.WriteVector(opt_state);
            dp_refs_.push_back({dp.replica, std::move(opt_state)});
        }
    }

    // The dense MLPs + dense optimizer are replicated and small relative
    // to the tables, so rank 0 stores them in full every time instead of
    // delta-encoding them.
    writer.Write<uint8_t>(trainer_.rank_ == 0 ? 1 : 0);
    if (trainer_.rank_ == 0) {
        BinaryWriter dense;
        trainer_.bottom_->Save(dense);
        trainer_.top_->Save(dense);
        trainer_.dense_opt_.Save(dense);
        writer.WriteVector(dense.buffer());
    }

    store_.PutBaseline(trainer_.rank_, writer.buffer());
    obs::MetricsRegistry::Get()
        .GetCounter("neo.core.checkpoint_baselines")
        .Add();
}

void
DistributedCheckpointer::WriteDelta()
{
    NEO_TRACE_SPAN("checkpoint_delta", "recovery");
    const DeltaCapture capture = CaptureDelta();
    store_.AppendDelta(capture.rank, SerializeDelta(capture));
}

DistributedCheckpointer::DeltaCapture
DistributedCheckpointer::CaptureDelta()
{
    NEO_TRACE_SPAN("checkpoint_capture", "recovery");
    NEO_REQUIRE(shard_refs_.size() == trainer_.shards_.size(),
                "WriteDelta before WriteBaseline");
    AgreeEpoch();

    DeltaCapture capture;
    capture.rank = trainer_.rank_;
    capture.epoch = epoch_;

    last_delta_rows_ = 0;
    auto capture_entry = [&](int table, bool is_dp, int64_t row_begin,
                             const ops::EmbeddingTable& current,
                             const ops::SparseOptimizer& opt,
                             Reference& ref) {
        const int64_t rows = current.rows();
        const int64_t dim = current.dim();
        const size_t sfpr = opt.StateFloatsPerRow();
        DeltaCapture::Entry entry;
        entry.table = table;
        entry.is_dp = is_dp;
        entry.row_begin = row_begin;
        entry.row_end = row_begin + rows;
        entry.dim = dim;
        entry.sfpr = static_cast<uint32_t>(sfpr);

        std::vector<float> cur_row(static_cast<size_t>(dim));
        std::vector<float> ref_row(static_cast<size_t>(dim));
        std::vector<float> cur_opt(sfpr);
        for (int64_t r = 0; r < rows; r++) {
            current.ReadRow(r, cur_row.data());
            ref.table.ReadRow(r, ref_row.data());
            opt.ExportRowState(r, cur_opt.data());
            const float* ref_opt =
                ref.opt_state.data() + static_cast<size_t>(r) * sfpr;
            const bool row_changed =
                std::memcmp(cur_row.data(), ref_row.data(),
                            static_cast<size_t>(dim) * sizeof(float)) != 0;
            const bool opt_changed =
                sfpr > 0 && std::memcmp(cur_opt.data(), ref_opt,
                                        sfpr * sizeof(float)) != 0;
            if (row_changed || opt_changed) {
                // Delta rows carry GLOBAL row ids so restore can assemble
                // logical tables without knowing the writer's sharding.
                entry.changed.push_back(row_begin + r);
                entry.payload.insert(entry.payload.end(), cur_row.begin(),
                                     cur_row.end());
                entry.opt_payload.insert(entry.opt_payload.end(),
                                         cur_opt.begin(), cur_opt.end());
                ref.table.WriteRow(r, cur_row.data());
                std::memcpy(ref.opt_state.data() +
                                static_cast<size_t>(r) * sfpr,
                            cur_opt.data(), sfpr * sizeof(float));
            }
        }
        last_delta_rows_ += entry.changed.size();
        capture.entries.push_back(std::move(entry));
    };

    for (size_t i = 0; i < trainer_.shards_.size(); i++) {
        auto& shard = trainer_.shards_[i];
        capture_entry(shard.meta.table, false, shard.meta.row_begin,
                      shard.table, shard.optimizer, shard_refs_[i]);
    }
    if (trainer_.rank_ == 0) {
        NEO_REQUIRE(dp_refs_.size() == trainer_.dp_tables_.size(),
                    "DP reference bookkeeping mismatch");
        for (size_t i = 0; i < trainer_.dp_tables_.size(); i++) {
            auto& dp = trainer_.dp_tables_[i];
            capture_entry(dp.table, true, 0, dp.replica, dp.optimizer,
                          dp_refs_[i]);
        }
    }

    // The dense state mutates next step, so the capture must copy it now
    // even though serialization may run later on another thread.
    capture.has_dense = trainer_.rank_ == 0;
    if (capture.has_dense) {
        BinaryWriter dense;
        trainer_.bottom_->Save(dense);
        trainer_.top_->Save(dense);
        trainer_.dense_opt_.Save(dense);
        capture.dense_blob = dense.buffer();
    }

    obs::MetricsRegistry::Get()
        .GetCounter("neo.core.checkpoint_deltas")
        .Add();
    return capture;
}

std::vector<uint8_t>
DistributedCheckpointer::SerializeDelta(const DeltaCapture& capture)
{
    NEO_TRACE_SPAN("checkpoint_serialize", "recovery");
    BinaryWriter writer;
    writer.Write<uint32_t>(kDeltaStreamMagic);
    writer.Write<int32_t>(capture.rank);
    writer.Write<uint64_t>(capture.epoch);
    writer.Write<uint64_t>(capture.entries.size());
    for (const DeltaCapture::Entry& entry : capture.entries) {
        writer.Write<int32_t>(entry.table);
        writer.Write<uint8_t>(entry.is_dp ? 1 : 0);
        writer.Write<int64_t>(entry.row_begin);
        writer.Write<int64_t>(entry.row_end);
        writer.Write<int64_t>(0);
        writer.Write<int64_t>(entry.dim);
        writer.Write<uint32_t>(entry.sfpr);
        writer.WriteVector(entry.changed);
        writer.WriteVector(entry.payload);
        writer.WriteVector(entry.opt_payload);
    }
    writer.Write<uint8_t>(capture.has_dense ? 1 : 0);
    if (capture.has_dense) {
        writer.WriteVector(capture.dense_blob);
    }
    return writer.buffer();
}

AssembledCheckpoint
AssembledCheckpoint::FromStore(const CheckpointStore& store,
                               const DlrmConfig& config)
{
    AssembledCheckpoint assembled;
    std::map<int, LogicalTable>& logical = assembled.tables;
    std::vector<uint8_t>& dense_blob = assembled.dense_blob;
    std::optional<uint64_t> final_epoch;

    auto read_entry = [&](BinaryReader& reader, bool is_delta) {
        const int32_t table = reader.Read<int32_t>();
        NEO_REQUIRE(table >= 0 &&
                        table < static_cast<int32_t>(config.tables.size()),
                    "checkpoint entry references unknown table ", table);
        const auto& cfg = config.tables[table];
        reader.Read<uint8_t>();  // is_dp: placement hint only
        const int64_t row_begin = reader.Read<int64_t>();
        const int64_t row_end = reader.Read<int64_t>();
        const int64_t col_begin = reader.Read<int64_t>();
        const int64_t col_end = reader.Read<int64_t>();
        const uint32_t sfpr = reader.Read<uint32_t>();
        NEO_REQUIRE(col_begin == 0 && col_end == cfg.dim,
                    "column-wise shards are not supported by elastic "
                    "restore (table ", table, " columns [", col_begin, ", ",
                    col_end, ") of ", cfg.dim, ")");
        NEO_REQUIRE(row_begin >= 0 && row_begin <= row_end &&
                        row_end <= cfg.rows,
                    "checkpoint row range out of bounds");
        const size_t expected_sfpr =
            StateFloatsPerRowFor(config.sparse_optimizer, cfg.dim);
        NEO_REQUIRE(sfpr == expected_sfpr,
                    "optimizer state layout mismatch: checkpoint has ",
                    sfpr, " floats/row, model expects ", expected_sfpr);

        auto it = logical.find(table);
        if (it == logical.end()) {
            it = logical
                     .emplace(table,
                              LogicalTable(
                                  ops::EmbeddingTable(cfg.rows, cfg.dim,
                                                      cfg.precision),
                                  expected_sfpr))
                     .first;
        }
        LogicalTable& full = it->second;
        std::vector<float> row(static_cast<size_t>(cfg.dim));

        if (!is_delta) {
            ops::EmbeddingTable piece = ops::EmbeddingTable::Load(reader);
            NEO_REQUIRE(piece.rows() == row_end - row_begin &&
                            piece.dim() == cfg.dim,
                        "baseline shard shape mismatch");
            const auto opt = reader.ReadVector<float>();
            NEO_REQUIRE(opt.size() == static_cast<size_t>(piece.rows()) *
                                          expected_sfpr,
                        "baseline optimizer state size mismatch");
            for (int64_t r = 0; r < piece.rows(); r++) {
                piece.ReadRow(r, row.data());
                full.table.WriteRow(row_begin + r, row.data());
            }
            std::memcpy(full.opt_state.data() +
                            static_cast<size_t>(row_begin) * expected_sfpr,
                        opt.data(), opt.size() * sizeof(float));
        } else {
            const auto changed = reader.ReadVector<int64_t>();
            const auto payload = reader.ReadVector<float>();
            const auto opt_payload = reader.ReadVector<float>();
            NEO_REQUIRE(payload.size() ==
                                changed.size() *
                                    static_cast<size_t>(cfg.dim) &&
                            opt_payload.size() ==
                                changed.size() * expected_sfpr,
                        "delta payload size mismatch");
            for (size_t i = 0; i < changed.size(); i++) {
                const int64_t g = changed[i];
                NEO_REQUIRE(g >= row_begin && g < row_end,
                            "delta row id ", g,
                            " outside its entry's row range");
                full.table.WriteRow(
                    g, payload.data() + i * static_cast<size_t>(cfg.dim));
                std::memcpy(full.opt_state.data() +
                                static_cast<size_t>(g) * expected_sfpr,
                            opt_payload.data() + i * expected_sfpr,
                            expected_sfpr * sizeof(float));
            }
        }
    };

    for (const int wr : store.Ranks()) {
        // Baseline stream.
        BinaryReader reader(store.Baseline(wr));
        NEO_REQUIRE(reader.Read<uint32_t>() == kBaselineMagic,
                    "bad baseline magic for rank ", wr);
        NEO_REQUIRE(reader.Read<int32_t>() == wr,
                    "baseline stream rank mismatch");
        uint64_t epoch = reader.Read<uint64_t>();
        const uint64_t base_entries = reader.Read<uint64_t>();
        for (uint64_t e = 0; e < base_entries; e++) {
            read_entry(reader, /*is_delta=*/false);
        }
        if (reader.Read<uint8_t>() != 0) {
            dense_blob = reader.ReadVector<uint8_t>();
        }

        // Delta chain, with epoch continuity.
        for (const auto& delta : store.Deltas(wr)) {
            BinaryReader dr(delta);
            NEO_REQUIRE(dr.Read<uint32_t>() == kDeltaStreamMagic,
                        "bad delta magic for rank ", wr);
            NEO_REQUIRE(dr.Read<int32_t>() == wr,
                        "delta stream rank mismatch");
            const uint64_t delta_epoch = dr.Read<uint64_t>();
            NEO_REQUIRE(delta_epoch == epoch + 1,
                        "delta out of order for rank ", wr, ": expected "
                        "epoch ", epoch + 1, ", got ", delta_epoch);
            epoch = delta_epoch;
            const uint64_t entries = dr.Read<uint64_t>();
            for (uint64_t e = 0; e < entries; e++) {
                read_entry(dr, /*is_delta=*/true);
            }
            if (dr.Read<uint8_t>() != 0) {
                dense_blob = dr.ReadVector<uint8_t>();
            }
        }
        NEO_REQUIRE(!final_epoch.has_value() || *final_epoch == epoch,
                    "checkpoint streams end at different epochs (rank ", wr,
                    " at ", epoch, ", earlier ranks at ", *final_epoch, ")");
        final_epoch = epoch;
    }
    NEO_REQUIRE(final_epoch.has_value(), "checkpoint store is empty");
    NEO_REQUIRE(!dense_blob.empty(),
                "checkpoint has no dense (MLP) state — rank 0's stream is "
                "missing or incomplete");
    assembled.epoch = *final_epoch;
    return assembled;
}

void
DistributedCheckpointer::RestoreInto(const CheckpointStore& store,
                                     DistributedDlrm& target)
{
    NEO_TRACE_SPAN("checkpoint_restore", "recovery");
    const AssembledCheckpoint assembled =
        AssembledCheckpoint::FromStore(store, target.config_);
    const std::map<int, AssembledCheckpoint::LogicalTable>& logical =
        assembled.tables;

    // Slice the logical tables onto the target's (possibly different)
    // sharding.
    std::vector<float> row_buf;
    for (auto& shard : target.shards_) {
        const auto it = logical.find(shard.meta.table);
        NEO_REQUIRE(it != logical.end(), "checkpoint is missing table ",
                    shard.meta.table);
        const auto& full = it->second;
        NEO_REQUIRE(shard.meta.col_begin == 0 &&
                        shard.meta.col_end == full.table.dim(),
                    "elastic restore cannot fill column-wise target shards");
        row_buf.resize(static_cast<size_t>(full.table.dim()));
        for (int64_t r = 0; r < shard.table.rows(); r++) {
            const int64_t g = shard.meta.row_begin + r;
            full.table.ReadRow(g, row_buf.data());
            shard.table.WriteRow(r, row_buf.data());
            if (full.sfpr > 0) {
                shard.optimizer.ImportRowState(
                    r, full.opt_state.data() +
                           static_cast<size_t>(g) * full.sfpr);
            }
        }
    }
    for (auto& dp : target.dp_tables_) {
        const auto it = logical.find(dp.table);
        NEO_REQUIRE(it != logical.end(), "checkpoint is missing DP table ",
                    dp.table);
        const auto& full = it->second;
        dp.replica = full.table;
        if (full.sfpr > 0) {
            for (int64_t r = 0; r < dp.replica.rows(); r++) {
                dp.optimizer.ImportRowState(
                    r, full.opt_state.data() +
                           static_cast<size_t>(r) * full.sfpr);
            }
        }
    }

    BinaryReader dense(assembled.dense_blob);
    target.bottom_->Load(dense);
    target.top_->Load(dense);
    target.dense_opt_.Load(dense);

    // Consistency check on the (possibly shrunken) target group: every
    // rank must have restored the same epoch.
    float sum = static_cast<float>(assembled.epoch);
    target.pg_.AllReduceSum(&sum, 1);
    NEO_REQUIRE(sum == static_cast<float>(assembled.epoch) *
                           static_cast<float>(target.world_),
                "restored epoch differs across target ranks");
    obs::MetricsRegistry::Get().GetCounter("neo.core.restores").Add();
}

}  // namespace neo::core
