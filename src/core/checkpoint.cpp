#include "core/checkpoint.h"

#include <cstring>

#include "common/logging.h"

namespace neo::core {

namespace {

constexpr uint32_t kDeltaMagic = 0x44454C54;  // 'DELT'

}  // namespace

DeltaCheckpointer::DeltaCheckpointer(ops::EmbeddingTable* table)
    : table_(table), reference_(*table)
{
    NEO_REQUIRE(table_ != nullptr, "null table");
}

std::vector<uint8_t>
DeltaCheckpointer::WriteBaseline()
{
    BinaryWriter writer;
    table_->Save(writer);
    reference_ = *table_;
    return writer.buffer();
}

std::vector<uint8_t>
DeltaCheckpointer::WriteDelta()
{
    const int64_t rows = table_->rows();
    const int64_t dim = table_->dim();
    NEO_REQUIRE(reference_.rows() == rows && reference_.dim() == dim,
                "reference/table shape drift");

    std::vector<int64_t> changed;
    std::vector<float> payload;
    std::vector<float> current(static_cast<size_t>(dim));
    std::vector<float> previous(static_cast<size_t>(dim));
    for (int64_t r = 0; r < rows; r++) {
        table_->ReadRow(r, current.data());
        reference_.ReadRow(r, previous.data());
        if (std::memcmp(current.data(), previous.data(),
                        static_cast<size_t>(dim) * sizeof(float)) != 0) {
            changed.push_back(r);
            payload.insert(payload.end(), current.begin(), current.end());
            reference_.WriteRow(r, current.data());
        }
    }
    last_delta_rows_ = changed.size();

    BinaryWriter writer;
    writer.Write<uint32_t>(kDeltaMagic);
    writer.Write<int64_t>(rows);
    writer.Write<int64_t>(dim);
    writer.WriteVector(changed);
    writer.WriteVector(payload);
    return writer.buffer();
}

ops::EmbeddingTable
DeltaCheckpointer::Restore(const std::vector<uint8_t>& baseline,
                           const std::vector<std::vector<uint8_t>>& deltas)
{
    BinaryReader base_reader(baseline);
    ops::EmbeddingTable table = ops::EmbeddingTable::Load(base_reader);
    for (const auto& delta : deltas) {
        BinaryReader reader(delta);
        NEO_REQUIRE(reader.Read<uint32_t>() == kDeltaMagic,
                    "bad delta magic");
        const int64_t rows = reader.Read<int64_t>();
        const int64_t dim = reader.Read<int64_t>();
        NEO_REQUIRE(rows == table.rows() && dim == table.dim(),
                    "delta shape mismatch");
        const auto changed = reader.ReadVector<int64_t>();
        const auto payload = reader.ReadVector<float>();
        NEO_REQUIRE(payload.size() ==
                        changed.size() * static_cast<size_t>(dim),
                    "delta payload size mismatch");
        for (size_t i = 0; i < changed.size(); i++) {
            table.WriteRow(changed[i],
                           payload.data() + i * static_cast<size_t>(dim));
        }
    }
    return table;
}

}  // namespace neo::core
