/**
 * @file
 * Asynchronous differential checkpointing (Check-N-Run [9], Sec. 4.4):
 * take the serialize-and-store half of a delta write off the training
 * critical path. The step path only pays for CaptureDelta() — the epoch
 * agreement plus a copy of the touched rows — while serialization and
 * the (possibly disk-backed) store append run on a dedicated background
 * lane, double-buffered: with max_in_flight = 2 the trainer can already
 * capture delta N+1 while delta N is still flushing.
 *
 * Torn-delta-chain invariant: AssembledCheckpoint::FromStore demands
 * strictly consecutive epochs per rank, so a delta chain with a hole is
 * unreadable past the hole. Every capture is therefore tagged with a
 * write generation, and a flush task appends to the store only if every
 * earlier generation flushed successfully. If flush G fails, generations
 * G+1... are dropped (not appended) and the failure is rethrown from the
 * next WriteDelta()/Flush() — RestoreInto can still read the chain up to
 * G-1, and never sees a chain with a missing link.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>

#include "common/thread_pool.h"
#include "core/checkpoint.h"

namespace neo::core {

/** Double-buffered async wrapper around a DistributedCheckpointer. */
class AsyncCheckpointer
{
  public:
    struct Options {
        /**
         * Captured-but-unflushed deltas allowed before WriteDelta()
         * blocks (backpressure). 1 = serialize strictly one at a time
         * (still off the step path); 2 = classic double buffering.
         */
        size_t max_in_flight = 2;
    };

    /**
     * @param ckpt The synchronous checkpointer to wrap (not owned; must
     *   outlive this object). Callers must not mix their own Write*()
     *   calls on `ckpt` with this wrapper's while deltas are in flight.
     * @param rank Rank tag for the flusher lane's trace spans, so
     *   background flush time aggregates into this rank's breakdown.
     */
    AsyncCheckpointer(DistributedCheckpointer& ckpt, int rank,
                      const Options& options);
    AsyncCheckpointer(DistributedCheckpointer& ckpt, int rank);

    /** Drains in-flight flushes; a flush failure is logged, not thrown. */
    ~AsyncCheckpointer();

    AsyncCheckpointer(const AsyncCheckpointer&) = delete;
    AsyncCheckpointer& operator=(const AsyncCheckpointer&) = delete;

    /**
     * Full baseline, synchronously (collective). Drains in-flight deltas
     * first so the baseline supersedes a fully-flushed chain.
     */
    void WriteBaseline();

    /**
     * Delta write with the blocking half deferred (collective on the
     * capture). Blocks only when max_in_flight captures are already
     * unflushed. Rethrows the first earlier flush failure, if any.
     */
    void WriteDelta();

    /**
     * Block until every enqueued delta reached the store. Rethrows (and
     * clears) the first flush failure. Call before reading the store
     * (RestoreInto / FromStore) — an unflushed delta is not torn, it is
     * simply not written yet.
     */
    void Flush();

    /** Deltas captured but not yet (successfully) in the store. */
    size_t in_flight() const;

    /** Generations appended to the store so far. */
    uint64_t flushed_generation() const;

  private:
    DistributedCheckpointer& ckpt_;
    Options options_;
    /** Single-thread flusher; one lane keeps appends in capture order. */
    std::unique_ptr<ThreadPool> lane_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    size_t in_flight_ = 0;
    /** Generation tag handed to the next capture (1-based). */
    uint64_t next_generation_ = 1;
    /** Highest generation whose bytes reached the store. */
    uint64_t flushed_generation_ = 0;
    /** First flush failure; later generations refuse to append. */
    std::exception_ptr error_;
};

}  // namespace neo::core
