/**
 * @file
 * Transactional training steps: a StepTransaction captures, just before
 * each mutation, the state a training step is about to change — the sparse
 * rows the batch touches (with their optimizer row state) and the dense
 * MLP parameters + dense optimizer state. If the step fails mid-apply
 * (e.g. a peer dies between the sparse and dense updates), Rollback()
 * restores the captured state bit-exactly, upgrading
 * TrainStepWithRecovery's retry semantics from at-least-once to
 * exactly-once: a retried step produces losses bit-identical to a
 * fault-free run instead of double-applying partial updates.
 *
 * The capture is the in-memory analogue of the differential checkpoint
 * (Sec. 4.4): only touched rows are saved, so the undo log is
 * batch-sized, not table-sized.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ops/sparse_optimizer.h"

namespace neo::core {

class DistributedDlrm;

/**
 * RAII undo log for one training-step attempt. Construction registers the
 * transaction with the trainer, whose update phases then call the
 * Capture* hooks immediately before mutating state; destruction detaches.
 * Rollback only happens on an explicit Rollback() call — a destructor
 * that silently rolled back would hide bugs in the retry loop.
 */
class StepTransaction
{
  public:
    /** Attach to `trainer` (which must not already have a transaction). */
    explicit StepTransaction(DistributedDlrm& trainer);
    ~StepTransaction();

    StepTransaction(const StepTransaction&) = delete;
    StepTransaction& operator=(const StepTransaction&) = delete;

    /**
     * Restore every captured snapshot: sparse rows + their optimizer
     * state for each captured shard/DP table, and the dense blob if the
     * dense apply had been reached. Safe after partial capture (phases
     * the attempt never reached are simply not restored — they were
     * never mutated).
     */
    void Rollback();

    /** Discard the captured state (the step committed). */
    void Commit();

    /** Rows captured across all shards and DP tables so far. */
    uint64_t captured_rows() const;

    /** True once CaptureDense() ran for this attempt. */
    bool dense_captured() const { return dense_.captured; }

  private:
    friend class DistributedDlrm;

    /** Pre-image of the rows one shard's update is about to touch. */
    struct RowsSnapshot {
        bool captured = false;
        /** Unique touched rows, ascending (local row ids). */
        std::vector<int64_t> rows;
        /** Row values, rows.size() x dim. */
        std::vector<float> values;
        /** Optimizer row state, rows.size() x StateFloatsPerRow. */
        std::vector<float> opt_state;
    };

    /** Pre-image of the dense MLPs + dense optimizer. */
    struct DenseSnapshot {
        bool captured = false;
        std::vector<uint8_t> blob;
    };

    /** Capture shard i's touched rows (called before its sparse apply). */
    void CaptureShardRows(size_t shard_index,
                          std::span<const ops::SparseGradRef> grads);

    /** Capture DP table i's touched rows. */
    void CaptureDpRows(size_t dp_index,
                       std::span<const ops::SparseGradRef> grads);

    /** Capture the dense MLPs + optimizer (called before dense apply). */
    void CaptureDense();

    /** Shared row-capture logic for shards and DP tables. */
    static void CaptureRows(const ops::EmbeddingTable& table,
                            const ops::SparseOptimizer& optimizer,
                            std::span<const ops::SparseGradRef> grads,
                            RowsSnapshot& snapshot);

    DistributedDlrm& trainer_;
    std::vector<RowsSnapshot> shard_snapshots_;
    std::vector<RowsSnapshot> dp_snapshots_;
    DenseSnapshot dense_;
};

}  // namespace neo::core
