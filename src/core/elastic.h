/**
 * @file
 * Shrinking-world elastic recovery (the paper's production setting treats
 * node loss as routine; Sec. 4.4 pairs this with differential
 * checkpointing so recovery does not mean restarting the job).
 *
 * When a rank dies permanently — the poisoned world's TryRecover times
 * out — the survivors call RecoverShrunk(): they rendezvous into a
 * smaller sub-communicator (ThreadedWorld::ShrinkAfterFailure), the
 * sharding planner recomputes placement over the survivor set, a fresh
 * DistributedDlrm is built on the sub-group, and the latest
 * baseline+delta checkpoint — including the dead rank's shards — is
 * restored into it. Training then continues degraded at N-1 workers
 * instead of aborting.
 */
#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "comm/threaded_process_group.h"
#include "core/checkpoint.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "sharding/planner.h"

namespace neo::core {

/** Outcome of one rank's RecoverShrunk() call. */
struct ElasticRecovery {
    /** True when the survivor world formed and state was restored. */
    bool ok = false;
    /** Failure note when !ok (second rank missing, infeasible plan...). */
    std::string note;
    /** This rank's compacted rank / the survivor world size. */
    int new_rank = -1;
    int new_size = 0;
    /** Placement recomputed over the survivor set. */
    sharding::ShardingPlan plan;
    /** Survivor-world handle (owned by the parent world). */
    comm::ProcessGroup* group = nullptr;
    /** The rebuilt trainer, restored from the checkpoint store. */
    std::unique_ptr<DistributedDlrm> trainer;
};

/**
 * Survivor-side elastic recovery. Collective across the survivors of
 * `world` (every rank except the dead one must call); the failed rank's
 * thread should simply return. `store` must hold checkpoints written by
 * a DistributedCheckpointer before the failure — the restored trainer
 * resumes from that epoch, so steps after the last checkpoint are lost
 * (re-run them or accept the gap).
 */
ElasticRecovery RecoverShrunk(comm::ThreadedWorld& world, int rank,
                              const DlrmConfig& config,
                              const sharding::PlannerOptions& planner_options,
                              const CheckpointStore& store,
                              const DistributedOptions& options,
                              std::chrono::milliseconds timeout);

}  // namespace neo::core
