#include "core/dlrm_reference.h"

#include "common/logging.h"

namespace neo::core {

DlrmReference::DlrmReference(const DlrmConfig& config)
    : config_(config), dense_opt_(config.dense_optimizer)
{
    config_.Validate();
    Rng mlp_rng(config_.seed);
    bottom_ = std::make_unique<ops::Mlp>(
        ops::MlpConfig{config_.BottomLayerSizes(), /*final_relu=*/true},
        mlp_rng);
    top_ = std::make_unique<ops::Mlp>(
        ops::MlpConfig{config_.TopLayerSizes(), /*final_relu=*/false},
        mlp_rng);
    embeddings_ = std::make_unique<ops::EmbeddingBagCollection>(
        config_.TableSpecs(), config_.sparse_optimizer, config_.seed);
    interaction_ = std::make_unique<DotInteraction>(config_.tables.size(),
                                                    config_.EmbeddingDim());
    bottom_slots_ = bottom_->RegisterParams(dense_opt_);
    top_slots_ = top_->RegisterParams(dense_opt_);
}

std::vector<ops::TableInput>
DlrmReference::TableInputs(const data::Batch& batch) const
{
    NEO_REQUIRE(batch.sparse.num_tables == config_.tables.size(),
                "batch table count mismatch");
    std::vector<ops::TableInput> inputs;
    inputs.reserve(config_.tables.size());
    for (size_t t = 0; t < config_.tables.size(); t++) {
        inputs.push_back(batch.sparse.InputForTable(t));
    }
    return inputs;
}

void
DlrmReference::Predict(const data::Batch& batch, Matrix& logits)
{
    const size_t b = batch.size();
    bottom_->Forward(batch.dense, bottom_out_);
    embeddings_->Forward(TableInputs(batch), b, pooled_);
    if (interacted_.rows() != b ||
        interacted_.cols() != interaction_->OutputDim()) {
        interacted_ = Matrix(b, interaction_->OutputDim());
    }
    interaction_->Forward(bottom_out_, pooled_, interacted_);
    top_->Forward(interacted_, logits);
}

double
DlrmReference::TrainStep(const data::Batch& batch)
{
    const size_t b = batch.size();
    const auto inputs = TableInputs(batch);

    // ---- forward ----
    Predict(batch, logits_);
    const double loss = BceWithLogitsLoss(logits_, batch.labels);

    // ---- backward ----
    Matrix grad_logits(b, 1);
    BceWithLogitsGrad(logits_, batch.labels, grad_logits);

    top_->ZeroGrads();
    Matrix grad_interacted;
    top_->Backward(grad_logits, grad_interacted);

    Matrix grad_bottom_out(b, config_.EmbeddingDim());
    std::vector<Matrix> grad_pooled(config_.tables.size());
    for (auto& g : grad_pooled) {
        g = Matrix(b, config_.EmbeddingDim());
    }
    interaction_->Backward(grad_interacted, grad_bottom_out, grad_pooled);

    bottom_->ZeroGrads();
    Matrix grad_dense_unused;
    bottom_->Backward(grad_bottom_out, grad_dense_unused);

    // ---- update ----
    embeddings_->BackwardAndUpdate(inputs, b, grad_pooled);
    bottom_->ApplyOptimizer(dense_opt_, bottom_slots_);
    top_->ApplyOptimizer(dense_opt_, top_slots_);
    return loss;
}

void
DlrmReference::Evaluate(const data::Batch& batch, NormalizedEntropy& ne)
{
    Matrix logits;
    Predict(batch, logits);
    ne.AddLogits(logits, batch.labels);
}

bool
DlrmReference::Identical(DlrmReference& a, DlrmReference& b)
{
    if (!ops::Mlp::Identical(*a.bottom_, *b.bottom_) ||
        !ops::Mlp::Identical(*a.top_, *b.top_)) {
        return false;
    }
    if (a.embeddings_->NumTables() != b.embeddings_->NumTables()) {
        return false;
    }
    for (size_t t = 0; t < a.embeddings_->NumTables(); t++) {
        if (!ops::EmbeddingTable::Identical(a.embeddings_->table(t),
                                            b.embeddings_->table(t))) {
            return false;
        }
    }
    return true;
}

void
DlrmReference::Save(BinaryWriter& writer) const
{
    writer.Write<uint32_t>(0x444C524Du);  // 'DLRM'
    bottom_->Save(writer);
    top_->Save(writer);
    embeddings_->Save(writer);
}

void
DlrmReference::Load(BinaryReader& reader)
{
    const uint32_t magic = reader.Read<uint32_t>();
    NEO_REQUIRE(magic == 0x444C524Du, "bad DLRM checkpoint magic");
    bottom_->Load(reader);
    top_->Load(reader);
    embeddings_->Load(reader);
}

}  // namespace neo::core
