#include "core/dlrm_config.h"

#include "common/logging.h"
#include "tensor/interaction.h"

namespace neo::core {

void
DlrmConfig::Validate() const
{
    NEO_REQUIRE(num_dense > 0, "need dense features");
    NEO_REQUIRE(!bottom_mlp.empty(), "bottom MLP must have layers");
    NEO_REQUIRE(!tables.empty(), "need at least one embedding table");
    const size_t d = EmbeddingDim();
    for (const auto& t : tables) {
        NEO_REQUIRE(static_cast<size_t>(t.dim) == d,
                    "table ", t.name, " dim ", t.dim,
                    " != interaction dim ", d);
        NEO_REQUIRE(t.rows > 0, "table ", t.name, " has no rows");
    }
}

std::vector<ops::TableSpec>
DlrmConfig::TableSpecs() const
{
    std::vector<ops::TableSpec> specs;
    specs.reserve(tables.size());
    for (const auto& t : tables) {
        specs.push_back({t.rows, t.dim, t.precision});
    }
    return specs;
}

std::vector<size_t>
DlrmConfig::BottomLayerSizes() const
{
    std::vector<size_t> sizes = {num_dense};
    sizes.insert(sizes.end(), bottom_mlp.begin(), bottom_mlp.end());
    return sizes;
}

std::vector<size_t>
DlrmConfig::TopLayerSizes() const
{
    const size_t f = tables.size() + 1;
    const size_t interaction_dim = EmbeddingDim() + f * (f - 1) / 2;
    std::vector<size_t> sizes = {interaction_dim};
    sizes.insert(sizes.end(), top_mlp.begin(), top_mlp.end());
    sizes.push_back(1);
    return sizes;
}

double
DlrmConfig::TotalParams() const
{
    double total = 0.0;
    auto mlp_params = [](const std::vector<size_t>& sizes) {
        double p = 0.0;
        for (size_t l = 0; l + 1 < sizes.size(); l++) {
            p += static_cast<double>(sizes[l]) * sizes[l + 1] + sizes[l + 1];
        }
        return p;
    };
    total += mlp_params(BottomLayerSizes());
    total += mlp_params(TopLayerSizes());
    for (const auto& t : tables) {
        total += static_cast<double>(t.rows) * t.dim;
    }
    return total;
}

DlrmConfig
MakeSmallDlrmConfig(size_t num_tables, int64_t rows, size_t dim,
                    uint64_t seed)
{
    DlrmConfig config;
    config.num_dense = 8;
    config.bottom_mlp = {32, dim};
    config.top_mlp = {32, 16};
    config.seed = seed;
    for (size_t t = 0; t < num_tables; t++) {
        sharding::TableConfig table;
        table.name = "table_" + std::to_string(t);
        table.rows = rows + static_cast<int64_t>(t) * 16;
        table.dim = static_cast<int64_t>(dim);
        table.pooling = 4.0 + static_cast<double>(t);
        config.tables.push_back(table);
    }
    config.sparse_optimizer.kind = ops::SparseOptimizerKind::kRowWiseAdaGrad;
    config.sparse_optimizer.learning_rate = 0.05f;
    config.dense_optimizer.kind = ops::DenseOptimizerKind::kSgd;
    config.dense_optimizer.learning_rate = 0.05f;
    return config;
}

}  // namespace neo::core
