#include "core/shard_router.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "comm/quantized.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace neo::core {

bool
ShardLess(const sharding::Shard& a, const sharding::Shard& b)
{
    if (a.table != b.table) {
        return a.table < b.table;
    }
    if (a.row_begin != b.row_begin) {
        return a.row_begin < b.row_begin;
    }
    return a.col_begin < b.col_begin;
}

ShardRouter::ShardRouter(std::vector<sharding::TableConfig> tables,
                         size_t full_dim,
                         const sharding::ShardingPlan& plan,
                         comm::ProcessGroup& pg)
    : tables_(std::move(tables)), full_dim_(full_dim), pg_(pg),
      rank_(static_cast<size_t>(pg.Rank())), world_(pg.Size())
{
    for (const auto& shard : plan.shards) {
        if (shard.scheme != sharding::Scheme::kDataParallel) {
            NEO_REQUIRE(shard.worker >= 0 && shard.worker < world_,
                        "plan was built for a different world size");
            NEO_REQUIRE(shard.table >= 0 &&
                            shard.table <
                                static_cast<int>(tables_.size()),
                        "plan references unknown table ", shard.table);
            global_shards_.push_back(shard);
        }
    }
    std::stable_sort(global_shards_.begin(), global_shards_.end(),
                     ShardLess);
    route_.assign(static_cast<size_t>(world_), {});
    for (size_t gi = 0; gi < global_shards_.size(); gi++) {
        route_[static_cast<size_t>(global_shards_[gi].worker)].push_back(
            gi);
    }
}

std::vector<data::KeyedJagged>
ShardRouter::RouteInput(const data::KeyedJagged& local_sparse,
                        size_t b_local) const
{
    // Bucketize/route time books as "data"; the nested lengths/indices
    // AllToAlls carve their own time into the alltoall bucket.
    NEO_TRACE_SPAN("route_input", "data");
    NEO_REQUIRE(local_sparse.num_tables == tables_.size(),
                "input has ", local_sparse.num_tables,
                " sparse features but the model has ", tables_.size());
    NEO_REQUIRE(local_sparse.batch == b_local,
                "input batch disagrees with b_local");

    // Bucketize row-sharded tables once (shared by all their shards).
    // Key: table index -> (row splits, per-bucket jagged pieces).
    std::map<int, data::Bucketized> bucketized;
    std::map<int, std::vector<int64_t>> splits_of_table;
    for (const auto& shard : global_shards_) {
        if (shard.scheme != sharding::Scheme::kRowWise &&
            shard.scheme != sharding::Scheme::kTableRowWise) {
            continue;
        }
        splits_of_table[shard.table].push_back(shard.row_begin);
    }
    for (auto& [table, splits] : splits_of_table) {
        std::sort(splits.begin(), splits.end());
        splits.push_back(tables_[static_cast<size_t>(table)].rows);
        const data::KeyedJagged one_table =
            local_sparse.SliceTable(static_cast<size_t>(table));
        bucketized[table] = data::BucketizeRows(one_table, splits);
    }
    auto bucket_of = [&](const sharding::Shard& shard)
        -> const data::KeyedJagged& {
        const auto& splits = splits_of_table.at(shard.table);
        const auto it = std::lower_bound(splits.begin(), splits.end() - 1,
                                         shard.row_begin);
        NEO_CHECK(*it == shard.row_begin, "shard split lookup failed");
        const size_t k = static_cast<size_t>(it - splits.begin());
        return bucketized.at(shard.table).buckets[k];
    };

    // Build per-destination payloads: for every shard the destination
    // owns, its share of this worker's local batch.
    std::vector<std::vector<uint32_t>> send_len(
        static_cast<size_t>(world_));
    std::vector<std::vector<int64_t>> send_idx(
        static_cast<size_t>(world_));
    for (int dst = 0; dst < world_; dst++) {
        auto& len = send_len[static_cast<size_t>(dst)];
        auto& idx = send_idx[static_cast<size_t>(dst)];
        for (size_t gi : route_[static_cast<size_t>(dst)]) {
            const auto& shard = global_shards_[gi];
            switch (shard.scheme) {
              case sharding::Scheme::kTableWise:
              case sharding::Scheme::kColumnWise: {
                // Column shards receive duplicated input (Sec. 4.2.3).
                const auto lens = local_sparse.LengthsForTable(
                    static_cast<size_t>(shard.table));
                const auto ids = local_sparse.IndicesForTable(
                    static_cast<size_t>(shard.table));
                len.insert(len.end(), lens.begin(), lens.end());
                idx.insert(idx.end(), ids.begin(), ids.end());
                break;
              }
              case sharding::Scheme::kRowWise:
              case sharding::Scheme::kTableRowWise: {
                const data::KeyedJagged& bucket = bucket_of(shard);
                len.insert(len.end(), bucket.lengths.begin(),
                           bucket.lengths.end());
                idx.insert(idx.end(), bucket.indices.begin(),
                           bucket.indices.end());
                break;
              }
              case sharding::Scheme::kDataParallel:
                NEO_PANIC("DP shard in route");
            }
        }
    }

    // Lengths AllToAll followed by indices AllToAll (Sec. 4.4: the indices
    // payload size depends on the received lengths).
    std::vector<std::vector<uint32_t>> recv_len;
    std::vector<std::vector<int64_t>> recv_idx;
    pg_.AllToAllLengths(send_len, recv_len);
    pg_.AllToAllIndices(send_idx, recv_idx);

    // Reassemble: arriving data is (source, shard, sample); concatenate to
    // (shard, source, sample) — the permute step of Sec. 4.4.
    const size_t num_local = route_[rank_].size();
    std::vector<data::KeyedJagged> shard_inputs;
    shard_inputs.reserve(num_local);
    std::vector<size_t> len_cursor(static_cast<size_t>(world_), 0);
    std::vector<size_t> idx_cursor(static_cast<size_t>(world_), 0);
    for (size_t i = 0; i < num_local; i++) {
        std::vector<data::KeyedJagged> pieces;
        pieces.reserve(static_cast<size_t>(world_));
        for (int src = 0; src < world_; src++) {
            const size_t s = static_cast<size_t>(src);
            data::KeyedJagged piece = data::KeyedJagged::Empty(1, b_local);
            NEO_CHECK(len_cursor[s] + b_local <= recv_len[s].size(),
                      "input-dist lengths underflow");
            size_t total = 0;
            for (size_t b = 0; b < b_local; b++) {
                const uint32_t len = recv_len[s][len_cursor[s] + b];
                piece.lengths[b] = len;
                total += len;
            }
            len_cursor[s] += b_local;
            NEO_CHECK(idx_cursor[s] + total <= recv_idx[s].size(),
                      "input-dist indices underflow");
            piece.indices.assign(
                recv_idx[s].begin() +
                    static_cast<std::ptrdiff_t>(idx_cursor[s]),
                recv_idx[s].begin() +
                    static_cast<std::ptrdiff_t>(idx_cursor[s] + total));
            idx_cursor[s] += total;
            piece.RebuildOffsets();
            pieces.push_back(std::move(piece));
        }
        shard_inputs.push_back(data::ConcatBatches(pieces));
    }
    return shard_inputs;
}

void
ShardRouter::ExchangePooled(const std::vector<Matrix>& shard_pooled,
                            size_t b_local, Precision wire,
                            std::vector<Matrix>& pooled_out) const
{
    NEO_REQUIRE(shard_pooled.size() == route_[rank_].size(),
                "one pooled matrix per local shard expected");

    // Send each destination its local-batch slice of every local shard.
    std::vector<std::vector<float>> send(static_cast<size_t>(world_));
    for (int dst = 0; dst < world_; dst++) {
        auto& payload = send[static_cast<size_t>(dst)];
        for (const Matrix& pooled : shard_pooled) {
            const size_t d = pooled.cols();
            const size_t row0 = static_cast<size_t>(dst) * b_local;
            payload.insert(payload.end(), pooled.Row(row0),
                           pooled.Row(row0) + b_local * d);
        }
    }
    std::vector<std::vector<float>> recv;
    comm::QuantizedAllToAll(pg_, send, recv, wire);

    // Assemble per-table pooled outputs for the local batch. Column shards
    // land in their column range; row shards accumulate partial sums in
    // canonical (source-major, shard-minor) order for determinism.
    pooled_out.assign(tables_.size(), Matrix());
    for (size_t t = 0; t < tables_.size(); t++) {
        pooled_out[t] = Matrix(b_local, full_dim_);
    }
    std::vector<size_t> cursor(static_cast<size_t>(world_), 0);
    for (int src = 0; src < world_; src++) {
        const size_t s = static_cast<size_t>(src);
        for (size_t gi : route_[s]) {
            const auto& shard = global_shards_[gi];
            const size_t d = static_cast<size_t>(shard.NumCols());
            const float* payload = recv[s].data() + cursor[s];
            cursor[s] += b_local * d;
            Matrix& out = pooled_out[static_cast<size_t>(shard.table)];
            switch (shard.scheme) {
              case sharding::Scheme::kTableWise:
                for (size_t b = 0; b < b_local; b++) {
                    std::memcpy(out.Row(b), payload + b * d,
                                d * sizeof(float));
                }
                break;
              case sharding::Scheme::kColumnWise:
                for (size_t b = 0; b < b_local; b++) {
                    std::memcpy(out.Row(b) + shard.col_begin,
                                payload + b * d, d * sizeof(float));
                }
                break;
              case sharding::Scheme::kRowWise:
              case sharding::Scheme::kTableRowWise:
                // Partial pools: functionally the ReduceScatter of Fig. 8.
                for (size_t b = 0; b < b_local; b++) {
                    float* dst_row = out.Row(b);
                    const float* src_row = payload + b * d;
                    for (size_t c = 0; c < d; c++) {
                        dst_row[c] += src_row[c];
                    }
                }
                break;
              case sharding::Scheme::kDataParallel:
                NEO_PANIC("DP shard in route");
            }
        }
    }
}

}  // namespace neo::core
