/**
 * @file
 * Single-process DLRM reference model: the ground truth the distributed
 * trainer is validated against, and the model the async parameter-server
 * baseline trains. Runs the full forward/backward/update path in one
 * address space with no communication.
 */
#pragma once

#include <memory>

#include "core/dlrm_config.h"
#include "data/dataset.h"
#include "ops/mlp.h"
#include "tensor/interaction.h"
#include "tensor/loss.h"

namespace neo::core {

/** Complete single-process DLRM with fused embedding ops. */
class DlrmReference
{
  public:
    explicit DlrmReference(const DlrmConfig& config);

    /** Forward only: compute logits for a batch. */
    void Predict(const data::Batch& batch, Matrix& logits);

    /**
     * One synchronous training step: forward, loss, backward, exact sparse
     * update + dense optimizer step.
     * @return Mean BCE loss of the batch.
     */
    double TrainStep(const data::Batch& batch);

    /** Evaluate NE over a batch without updating parameters. */
    void Evaluate(const data::Batch& batch, NormalizedEntropy& ne);

    const DlrmConfig& config() const { return config_; }
    ops::EmbeddingBagCollection& embeddings() { return *embeddings_; }
    ops::Mlp& bottom_mlp() { return *bottom_; }
    ops::Mlp& top_mlp() { return *top_; }

    /** Bitwise parameter equality (determinism tests). */
    static bool Identical(DlrmReference& a, DlrmReference& b);

    /** Serialize all parameters. */
    void Save(BinaryWriter& writer) const;

    /** Restore all parameters. */
    void Load(BinaryReader& reader);

  private:
    /** Gather per-table TableInput views from a batch. */
    std::vector<ops::TableInput> TableInputs(const data::Batch& batch) const;

    DlrmConfig config_;
    std::unique_ptr<ops::Mlp> bottom_;
    std::unique_ptr<ops::Mlp> top_;
    std::unique_ptr<ops::EmbeddingBagCollection> embeddings_;
    std::unique_ptr<DotInteraction> interaction_;
    ops::DenseOptimizer dense_opt_;
    std::vector<size_t> bottom_slots_;
    std::vector<size_t> top_slots_;

    // Reused forward/backward buffers.
    Matrix bottom_out_;
    std::vector<Matrix> pooled_;
    Matrix interacted_;
    Matrix logits_;
};

}  // namespace neo::core
