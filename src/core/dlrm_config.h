/**
 * @file
 * Model configuration shared by the reference and distributed trainers.
 * Mirrors the DLRM architecture [39]: a bottom MLP over dense features, a
 * set of embedding tables over categorical features, a dot-product
 * interaction, and a top MLP emitting one CTR logit.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ops/dense_optimizer.h"
#include "ops/embedding_bag.h"
#include "ops/sparse_optimizer.h"
#include "sharding/types.h"

namespace neo::core {

/** Full model + optimizer configuration. */
struct DlrmConfig {
    /** Dense input feature count. */
    size_t num_dense = 16;
    /**
     * Bottom MLP widths after the input layer; the last width is the
     * embedding dimension d used by the interaction.
     */
    std::vector<size_t> bottom_mlp = {64, 32};
    /** Top MLP hidden widths; a final 1-wide logit layer is appended. */
    std::vector<size_t> top_mlp = {64, 32};
    /**
     * Embedding tables. For the functional interaction arch every table's
     * dim must equal bottom_mlp.back(); the sharding/perf studies accept
     * arbitrary dims.
     */
    std::vector<sharding::TableConfig> tables;
    ops::SparseOptimizerConfig sparse_optimizer;
    ops::DenseOptimizerConfig dense_optimizer;
    uint64_t seed = 1234;

    /** Interaction feature dimension d. */
    size_t EmbeddingDim() const { return bottom_mlp.back(); }

    /** Validate shapes for the functional trainer; fatal on error. */
    void Validate() const;

    /** Table specs for an EmbeddingBagCollection. */
    std::vector<ops::TableSpec> TableSpecs() const;

    /** Full bottom-MLP layer_sizes: {num_dense, bottom_mlp...}. */
    std::vector<size_t> BottomLayerSizes() const;

    /** Full top-MLP layer_sizes: {interaction_dim, top_mlp..., 1}. */
    std::vector<size_t> TopLayerSizes() const;

    /** Total parameter count (MLPs + embeddings). */
    double TotalParams() const;
};

/** Convenience builder for small test/example models. */
DlrmConfig MakeSmallDlrmConfig(size_t num_tables = 4, int64_t rows = 200,
                               size_t dim = 16, uint64_t seed = 1234);

}  // namespace neo::core
