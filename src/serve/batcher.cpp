#include "serve/batcher.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace neo::serve {

const char*
ResponseStatusName(ResponseStatus status)
{
    switch (status) {
        case ResponseStatus::kOk:
            return "ok";
        case ResponseStatus::kStopped:
            return "stopped";
        case ResponseStatus::kReplicaFailed:
            return "replica_failed";
        case ResponseStatus::kVersionUnavailable:
            return "version_unavailable";
        case ResponseStatus::kFailed:
            return "failed";
    }
    return "unknown";
}

bool
Batcher::Push(Pending pending)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) {
            return false;
        }
        queue_.push_back(std::move(pending));
    }
    cv_.notify_all();
    return true;
}

size_t
Batcher::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
Batcher::Stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopped_ = true;
    }
    cv_.notify_all();
}

bool
Batcher::stopped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stopped_;
}

bool
Batcher::NextBatch(std::vector<Pending>& out,
                   std::chrono::milliseconds max_wait)
{
    using Clock = std::chrono::steady_clock;
    out.clear();
    std::unique_lock<std::mutex> lock(mutex_);
    const Clock::time_point overall = Clock::now() + max_wait;
    for (;;) {
        if (stopped_) {
            if (queue_.empty()) {
                return false;
            }
            break;  // drain whatever is left, batch by batch
        }
        if (queue_.size() >= options_.max_batch) {
            break;
        }
        Clock::time_point deadline = overall;
        if (!queue_.empty()) {
            const Clock::time_point flush_at =
                queue_.front().enqueue +
                std::chrono::microseconds(options_.max_delay_us);
            if (Clock::now() >= flush_at) {
                break;
            }
            deadline = std::min(deadline, flush_at);
        }
        if (Clock::now() >= overall) {
            // Out of wait budget: hand control back even if requests are
            // queued but not yet flushable — the caller heartbeats and
            // calls again.
            return false;
        }
        cv_.wait_until(lock, deadline);
    }
    const size_t n = std::min(queue_.size(), options_.max_batch);
    out.reserve(n);
    for (size_t i = 0; i < n; i++) {
        out.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }
    return true;
}

void
Batcher::Merge(const std::vector<Pending>& batch, size_t pad,
               size_t num_dense, size_t num_tables, Matrix& dense,
               data::KeyedJagged& sparse)
{
    const size_t n = batch.size() + pad;
    NEO_REQUIRE(!batch.empty(), "cannot merge an empty batch");
    dense = Matrix(n, num_dense);
    std::vector<data::KeyedJagged> pieces;
    pieces.reserve(n);
    for (size_t i = 0; i < batch.size(); i++) {
        const Request& req = batch[i].request;
        NEO_REQUIRE(req.dense.size() == num_dense,
                    "request ", req.id, " has ", req.dense.size(),
                    " dense features, model expects ", num_dense);
        NEO_REQUIRE(req.sparse.batch == 1 &&
                        req.sparse.num_tables == num_tables,
                    "request ", req.id,
                    " sparse input must be a 1-sample batch with ",
                    num_tables, " tables");
        std::memcpy(dense.Row(i), req.dense.data(),
                    num_dense * sizeof(float));
        pieces.push_back(req.sparse);
    }
    for (size_t i = 0; i < pad; i++) {
        pieces.push_back(data::KeyedJagged::Empty(num_tables, 1));
    }
    sparse = data::ConcatBatches(pieces);
}

}  // namespace neo::serve
