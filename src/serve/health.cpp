#include "serve/health.h"

#include <algorithm>

namespace neo::serve {

const char*
ReplicaStateName(ReplicaState state)
{
    switch (state) {
        case ReplicaState::kHealthy:
            return "healthy";
        case ReplicaState::kSuspect:
            return "suspect";
        case ReplicaState::kQuarantined:
            return "quarantined";
        case ReplicaState::kDrained:
            return "drained";
    }
    return "unknown";
}

ReplicaHealth::ReplicaHealth(const HealthOptions& options)
    : options_(options)
{
}

void
ReplicaHealth::RecordLatency(double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    latency_ewma_ = latency_ewma_ == 0.0
                        ? seconds
                        : (1.0 - options_.latency_alpha) * latency_ewma_ +
                              options_.latency_alpha * seconds;
}

void
ReplicaHealth::RecordAdmit()
{
    std::lock_guard<std::mutex> lock(mutex_);
    admitted_++;
}

void
ReplicaHealth::RecordShed()
{
    std::lock_guard<std::mutex> lock(mutex_);
    shed_++;
}

void
ReplicaHealth::MarkFailed()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != ReplicaState::kDrained) {
        state_ = ReplicaState::kQuarantined;
    }
}

void
ReplicaHealth::MarkDrained()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == ReplicaState::kQuarantined) {
        state_ = ReplicaState::kDrained;
    }
}

void
ReplicaHealth::NoteStragglerVerdict(bool flagged)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == ReplicaState::kQuarantined ||
        state_ == ReplicaState::kDrained) {
        return;
    }
    if (!flagged) {
        flagged_streak_ = 0;
        straggler_factor_ = 1.0;
        state_ = ReplicaState::kHealthy;
        return;
    }
    flagged_streak_++;
    if (flagged_streak_ >= options_.suspect_after) {
        state_ = ReplicaState::kSuspect;
        straggler_factor_ *= options_.straggler_decay;
    }
}

double
ReplicaHealth::Weight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == ReplicaState::kQuarantined ||
        state_ == ReplicaState::kDrained) {
        return 0.0;
    }
    double weight = latency_ewma_ == 0.0
                        ? 1.0
                        : options_.baseline_latency_seconds / latency_ewma_;
    weight = std::min(weight, 1.0);
    const uint64_t total = admitted_ + shed_;
    if (total > 0) {
        const double shed_rate =
            static_cast<double>(shed_) / static_cast<double>(total);
        weight /= 1.0 + options_.shed_penalty * shed_rate;
    }
    weight *= straggler_factor_;
    return std::max(weight, options_.min_weight);
}

ReplicaState
ReplicaHealth::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

double
ReplicaHealth::LatencyEwma() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return latency_ewma_;
}

double
ReplicaHealth::ShedRate() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t total = admitted_ + shed_;
    return total == 0
               ? 0.0
               : static_cast<double>(shed_) / static_cast<double>(total);
}

}  // namespace neo::serve
