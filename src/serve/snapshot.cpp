#include "serve/snapshot.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "common/logging.h"
#include "core/shard_router.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neo::serve {

namespace {

/**
 * Slice fully-assembled logical tables onto a serving plan. Consumes
 * `logical` (tables are read row-by-row; DP replicas move out wholesale
 * when the plan keeps the table unsharded).
 */
void
SliceOntoPlan(std::map<int, ops::EmbeddingTable>& logical,
              const core::DlrmConfig& config,
              const sharding::ShardingPlan& plan, ModelSnapshot& snapshot)
{
    std::vector<sharding::Shard> ordered = plan.shards;
    std::stable_sort(ordered.begin(), ordered.end(), core::ShardLess);

    std::vector<float> row_buf;
    for (const auto& shard : ordered) {
        NEO_REQUIRE(shard.table >= 0 &&
                        shard.table <
                            static_cast<int>(config.tables.size()),
                    "serving plan references unknown table ", shard.table);
        const auto it = logical.find(shard.table);
        NEO_REQUIRE(it != logical.end(), "snapshot source is missing table ",
                    shard.table);
        const ops::EmbeddingTable& full = it->second;
        const auto& cfg = config.tables[shard.table];
        NEO_REQUIRE(full.rows() == cfg.rows && full.dim() == cfg.dim,
                    "assembled table shape mismatch for table ",
                    shard.table);

        if (shard.scheme == sharding::Scheme::kDataParallel) {
            snapshot.dp_tables.emplace_back(shard.table, full);
            continue;
        }
        const int64_t rows = shard.NumRows();
        const int64_t cols = shard.NumCols();
        ops::EmbeddingTable piece(rows, cols, cfg.precision);
        row_buf.resize(static_cast<size_t>(cfg.dim));
        std::vector<float> piece_row(static_cast<size_t>(cols));
        for (int64_t r = 0; r < rows; r++) {
            full.ReadRow(shard.row_begin + r, row_buf.data());
            std::memcpy(piece_row.data(),
                        row_buf.data() + shard.col_begin,
                        static_cast<size_t>(cols) * sizeof(float));
            piece.WriteRow(r, piece_row.data());
        }
        snapshot.shards.emplace_back(shard, std::move(piece));
    }
}

}  // namespace

std::shared_ptr<const ModelSnapshot>
SnapshotFromStore(const core::CheckpointStore& store,
                  const core::DlrmConfig& config,
                  const sharding::ShardingPlan& serving_plan,
                  uint64_t version)
{
    NEO_TRACE_SPAN("snapshot_from_store", "serve");
    core::AssembledCheckpoint assembled =
        core::AssembledCheckpoint::FromStore(store, config);

    auto snapshot = std::make_shared<ModelSnapshot>();
    snapshot->version = version;
    snapshot->source_epoch = assembled.epoch;
    snapshot->config = config;
    snapshot->plan = serving_plan;
    snapshot->dense_blob = std::move(assembled.dense_blob);

    std::map<int, ops::EmbeddingTable> logical;
    for (auto& [table, entry] : assembled.tables) {
        logical.emplace(table, std::move(entry.table));
    }
    SliceOntoPlan(logical, config, serving_plan, *snapshot);
    return snapshot;
}

std::shared_ptr<const ModelSnapshot>
SnapshotFromTrainer(core::DistributedDlrm& trainer,
                    const sharding::ShardingPlan& serving_plan,
                    uint64_t version, uint64_t source_epoch)
{
    NEO_TRACE_SPAN("snapshot_from_trainer", "serve");
    comm::ProcessGroup& pg = trainer.process_group();
    const core::DlrmConfig& config = trainer.config();
    const int world = pg.Size();

    // Every rank ships its shard payload to rank 0 only; the AllToAll
    // doubles as the barrier that freezes a consistent step.
    BinaryWriter writer;
    writer.Write<uint64_t>(trainer.NumLocalShards());
    for (size_t i = 0; i < trainer.NumLocalShards(); i++) {
        const auto& shard = trainer.local_shard(i);
        writer.Write<int32_t>(shard.meta.table);
        writer.Write<int64_t>(shard.meta.row_begin);
        writer.Write<int64_t>(shard.meta.row_end);
        writer.Write<int64_t>(shard.meta.col_begin);
        writer.Write<int64_t>(shard.meta.col_end);
        shard.table.Save(writer);
    }
    std::vector<std::vector<uint8_t>> send(static_cast<size_t>(world));
    send[0] = writer.buffer();
    std::vector<std::vector<uint8_t>> recv;
    pg.AllToAllBytes(send, recv);
    if (pg.Rank() != 0) {
        return nullptr;
    }

    // Rank 0: assemble logical tables from every rank's shards (CW
    // shards land via read-modify-write of the full-width row).
    std::map<int, ops::EmbeddingTable> logical;
    std::vector<float> row_buf;
    std::vector<float> piece_row;
    for (int src = 0; src < world; src++) {
        BinaryReader reader(std::move(recv[static_cast<size_t>(src)]));
        const uint64_t num_shards = reader.Read<uint64_t>();
        for (uint64_t s = 0; s < num_shards; s++) {
            const int32_t table = reader.Read<int32_t>();
            NEO_REQUIRE(
                table >= 0 &&
                    table < static_cast<int32_t>(config.tables.size()),
                "trainer shard references unknown table ", table);
            const auto& cfg = config.tables[table];
            const int64_t row_begin = reader.Read<int64_t>();
            const int64_t row_end = reader.Read<int64_t>();
            const int64_t col_begin = reader.Read<int64_t>();
            const int64_t col_end = reader.Read<int64_t>();
            NEO_REQUIRE(row_begin >= 0 && row_begin <= row_end &&
                            row_end <= cfg.rows && col_begin >= 0 &&
                            col_begin <= col_end && col_end <= cfg.dim,
                        "trainer shard geometry out of bounds");
            ops::EmbeddingTable piece = ops::EmbeddingTable::Load(reader);
            NEO_REQUIRE(piece.rows() == row_end - row_begin &&
                            piece.dim() == col_end - col_begin,
                        "trainer shard shape mismatch");
            auto it = logical.find(table);
            if (it == logical.end()) {
                it = logical
                         .emplace(table,
                                  ops::EmbeddingTable(cfg.rows, cfg.dim,
                                                      cfg.precision))
                         .first;
            }
            row_buf.resize(static_cast<size_t>(cfg.dim));
            piece_row.resize(static_cast<size_t>(piece.dim()));
            for (int64_t r = 0; r < piece.rows(); r++) {
                piece.ReadRow(r, piece_row.data());
                it->second.ReadRow(row_begin + r, row_buf.data());
                std::memcpy(row_buf.data() + col_begin, piece_row.data(),
                            piece_row.size() * sizeof(float));
                it->second.WriteRow(row_begin + r, row_buf.data());
            }
        }
    }
    // DP tables are replicated, so rank 0's own copies are the model.
    for (size_t i = 0; i < trainer.NumDpTables(); i++) {
        const auto& dp = trainer.dp_table(i);
        logical.emplace(dp.table, dp.replica);
    }

    auto snapshot = std::make_shared<ModelSnapshot>();
    snapshot->version = version;
    snapshot->source_epoch = source_epoch;
    snapshot->config = config;
    snapshot->plan = serving_plan;
    BinaryWriter dense;
    trainer.bottom_mlp().Save(dense);
    trainer.top_mlp().Save(dense);
    snapshot->dense_blob = dense.buffer();
    SliceOntoPlan(logical, config, serving_plan, *snapshot);
    return snapshot;
}

void
SnapshotRegistry::Publish(std::shared_ptr<const ModelSnapshot> snapshot)
{
    NEO_REQUIRE(snapshot != nullptr, "cannot publish a null snapshot");
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t current =
        history_.empty() ? 0 : history_.back()->version;
    NEO_REQUIRE(snapshot->version > current,
                "snapshot versions must strictly increase: publishing ",
                snapshot->version, " over ", current);
    history_.push_back(std::move(snapshot));
    while (history_.size() > history_depth_) {
        history_.pop_front();
    }
    swaps_++;
    auto& metrics = obs::MetricsRegistry::Get();
    metrics.GetCounter("neo.serve.snapshot_swaps").Add();
    metrics.GetGauge("neo.serve.snapshot_version")
        .Set(static_cast<double>(history_.back()->version));
}

std::shared_ptr<const ModelSnapshot>
SnapshotRegistry::Current() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return history_.empty() ? nullptr : history_.back();
}

std::shared_ptr<const ModelSnapshot>
SnapshotRegistry::Get(uint64_t version) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& snapshot : history_) {
        if (snapshot->version == version) {
            return snapshot;
        }
    }
    return nullptr;
}

void
SnapshotRegistry::SetHistoryDepth(size_t depth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    history_depth_ = depth == 0 ? 1 : depth;
}

uint64_t
SnapshotRegistry::CurrentVersion() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return history_.empty() ? 0 : history_.back()->version;
}

uint64_t
SnapshotRegistry::SwapCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return swaps_;
}

}  // namespace neo::serve
