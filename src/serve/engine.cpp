#include "serve/engine.h"

#include <cstring>

#include "common/logging.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neo::serve {

InferenceEngine::Tiered::Tiered(const EngineOptions& options,
                                const ops::EmbeddingTable& table)
    : hbm(cache::Tier::kHbm, options.hbm_capacity_bytes,
          options.hbm_bandwidth),
      ddr(cache::Tier::kDdr, options.ddr_capacity_bytes,
          options.ddr_bandwidth),
      rows(cache::CachedEmbeddingStore(table, options.cache, &hbm, &ddr)),
      bag(&rows, ops::SparseOptimizerConfig{})
{
}

InferenceEngine::InferenceEngine(const EngineOptions& options,
                                 comm::ProcessGroup& pg)
    : options_(options), pg_(pg), rank_(pg.Rank()), world_(pg.Size())
{
}

std::unique_ptr<InferenceEngine::VersionState>
InferenceEngine::BuildVersionState(
    const std::shared_ptr<const ModelSnapshot>& snapshot)
{
    NEO_TRACE_SPAN("serve_build_version", "serve");
    auto state = std::make_unique<VersionState>();
    state->snapshot = snapshot;
    const core::DlrmConfig& config = snapshot->config;

    // The Mlp constructor needs an Rng for its initial weights; Load
    // immediately overwrites them with the snapshot's.
    Rng rng(config.seed);
    state->bottom = std::make_unique<ops::Mlp>(
        ops::MlpConfig{config.BottomLayerSizes(), /*final_relu=*/true},
        rng);
    state->top = std::make_unique<ops::Mlp>(
        ops::MlpConfig{config.TopLayerSizes(), /*final_relu=*/false}, rng);
    BinaryReader dense(snapshot->dense_blob);
    state->bottom->Load(dense);
    state->top->Load(dense);
    state->interaction = std::make_unique<DotInteraction>(
        config.tables.size(), config.EmbeddingDim());
    state->router = std::make_unique<core::ShardRouter>(
        config.tables, config.EmbeddingDim(), snapshot->plan, pg_);

    for (const auto& shard : snapshot->shards) {
        if (shard.meta.worker != rank_) {
            continue;
        }
        state->local_shards.push_back(&shard);
        const bool tier = options_.ddr_threshold_bytes > 0 &&
                          shard.table.ParameterBytes() >=
                              options_.ddr_threshold_bytes;
        state->tiered.push_back(
            tier ? std::make_unique<Tiered>(options_, shard.table)
                 : nullptr);
    }
    NEO_CHECK(state->local_shards.size() ==
                  state->router->NumLocalShards(),
              "snapshot/router local shard mismatch");

    obs::MetricsRegistry::Get()
        .GetCounter("neo.serve.version_builds")
        .Add();
    return state;
}

void
InferenceEngine::Prefetch(
    const std::shared_ptr<const ModelSnapshot>& snapshot)
{
    NEO_REQUIRE(snapshot != nullptr, "cannot prefetch a null snapshot");
    if ((state_ && state_->snapshot->version == snapshot->version) ||
        (next_state_ &&
         next_state_->snapshot->version == snapshot->version)) {
        return;
    }
    next_state_ = BuildVersionState(snapshot);
    obs::MetricsRegistry::Get()
        .GetCounter("neo.serve.warm_builds")
        .Add();
}

void
InferenceEngine::Forward(
    const std::shared_ptr<const ModelSnapshot>& snapshot,
    const Matrix& global_dense, const data::KeyedJagged& global_sparse,
    std::vector<float>& logits_out)
{
    NEO_REQUIRE(snapshot != nullptr, "cannot serve a null snapshot");
    if (state_ == nullptr ||
        state_->snapshot->version != snapshot->version) {
        if (next_state_ &&
            next_state_->snapshot->version == snapshot->version) {
            state_ = std::move(next_state_);
            obs::MetricsRegistry::Get()
                .GetCounter("neo.serve.warm_promotions")
                .Add();
        } else {
            state_ = BuildVersionState(snapshot);
            obs::MetricsRegistry::Get()
                .GetCounter("neo.serve.cold_builds")
                .Add();
        }
    }
    VersionState& st = *state_;
    const core::DlrmConfig& config = st.snapshot->config;

    const size_t b_global = global_dense.rows();
    NEO_REQUIRE(b_global > 0 &&
                    b_global % static_cast<size_t>(world_) == 0,
                "serving batch ", b_global,
                " is not a multiple of the world size ", world_);
    const size_t b_local = b_global / static_cast<size_t>(world_);

    // Slice this rank's share of the dispatched batch.
    Matrix local_dense(b_local, config.num_dense);
    data::KeyedJagged local_sparse;
    {
        NEO_TRACE_SPAN("serve_data", "data");
        NEO_REQUIRE(global_dense.cols() == config.num_dense &&
                        global_sparse.batch == b_global &&
                        global_sparse.num_tables == config.tables.size(),
                    "dispatched batch shape mismatch");
        const size_t begin = static_cast<size_t>(rank_) * b_local;
        std::memcpy(local_dense.data(), global_dense.Row(begin),
                    b_local * config.num_dense * sizeof(float));
        local_sparse = global_sparse.SliceBatch(begin, begin + b_local);
    }

    const auto shard_inputs = st.router->RouteInput(local_sparse, b_local);

    // Local pooled lookups (read-only; tiered shards go through the
    // cache, which is lossless and so bitwise identical to direct).
    std::vector<Matrix> shard_pooled(st.local_shards.size());
    std::vector<Matrix> pooled;
    {
        NEO_TRACE_SPAN("serve_emb_forward", "emb_fwd");
        for (size_t i = 0; i < st.local_shards.size(); i++) {
            const auto& shard = *st.local_shards[i];
            const size_t d = static_cast<size_t>(shard.meta.NumCols());
            const auto& input = shard_inputs[i];
            NEO_CHECK(input.batch == b_global,
                      "shard input batch mismatch");
            Matrix& out = shard_pooled[i];
            if (st.tiered[i]) {
                st.tiered[i]->bag.Forward(input.InputForTable(0), b_global,
                                          out);
                continue;
            }
            out = Matrix(b_global, d);
            const auto lens = input.LengthsForTable(0);
            const auto idx = input.IndicesForTable(0);
            size_t offset = 0;
            for (size_t b = 0; b < b_global; b++) {
                float* row = out.Row(b);
                for (uint32_t k = 0; k < lens[b]; k++) {
                    shard.table.AccumulateRow(idx[offset + k], 1.0f, row);
                }
                offset += lens[b];
            }
        }
        st.router->ExchangePooled(shard_pooled, b_local,
                                  options_.forward_alltoall, pooled);

        // Replicated DP tables pool the local slice directly.
        for (const auto& dp : st.snapshot->dp_tables) {
            Matrix& out = pooled[static_cast<size_t>(dp.table)];
            const auto input = local_sparse.InputForTable(
                static_cast<size_t>(dp.table));
            size_t offset = 0;
            for (size_t b = 0; b < b_local; b++) {
                float* row = out.Row(b);
                for (uint32_t k = 0; k < input.lengths[b]; k++) {
                    dp.replica.AccumulateRow(input.indices[offset + k],
                                             1.0f, row);
                }
                offset += input.lengths[b];
            }
        }
    }

    Matrix logits;
    {
        NEO_TRACE_SPAN("serve_dense_forward", "mlp_fwd");
        Matrix bottom_out;
        st.bottom->Forward(local_dense, bottom_out);
        Matrix interacted(b_local, st.interaction->OutputDim());
        st.interaction->Forward(bottom_out, pooled, interacted);
        st.top->Forward(interacted, logits);
    }

    // Leave the full batch's logits on every rank; rank 0 completes the
    // responses, the others just finished their collective duty.
    logits_out.resize(b_global);
    pg_.AllGather(logits.data(), b_local, logits_out.data());
}

double
InferenceEngine::CacheHitRate() const
{
    if (state_ == nullptr) {
        return 0.0;
    }
    uint64_t hits = 0;
    uint64_t misses = 0;
    for (const auto& tiered : state_->tiered) {
        if (tiered) {
            const auto& stats = tiered->rows.store().stats();
            hits += stats.hits;
            misses += stats.misses;
        }
    }
    return hits + misses == 0
               ? 0.0
               : static_cast<double>(hits) /
                     static_cast<double>(hits + misses);
}

}  // namespace neo::serve
