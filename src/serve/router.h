/**
 * @file
 * Fault-tolerant serving fleet: a FleetRouter fronts N independent
 * serving worlds (each its own ThreadedWorld + Server — a "replica")
 * and turns single-world fault detection into end-to-end request
 * survival:
 *
 *  - **Weighted dispatch.** Each replica carries a ReplicaHealth score
 *    (latency EWMA, shed rate, straggler decay); Submit picks a replica
 *    by weight and falls through the remaining replicas if it sheds, so
 *    one overloaded or slow replica degrades gracefully instead of
 *    gating the fleet.
 *
 *  - **Mid-batch failover.** When a rank dies inside a replica's serve
 *    collective, that replica fails fast (Server::RankLoop drains every
 *    held request as a typed kReplicaFailed response) and the router's
 *    pump thread quarantines it and resubmits the affected requests to
 *    a surviving replica after a saturating backoff. Scores are
 *    per-sample deterministic, so a replayed request returns a response
 *    bitwise identical to an unkilled run. Clients never see a broken
 *    promise — only a completed future with a terminal status.
 *
 *  - **Snapshot warm-up.** Publish pre-builds the next version's engine
 *    state on every rank of every replica (Server::Prewarm rides idle
 *    slots of the serving collective) before atomically flipping
 *    traffic replica by replica — no first-request latency cliff.
 *    Per-request `pinned_version` keeps A/B splits served from the
 *    registry's version history across the flip.
 *
 * The front-end/executor split mirrors ONNX Runtime's hosting server:
 * the router is a thin scoring/retry shim, all model execution stays in
 * the replicas.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/threaded_process_group.h"
#include "core/checkpoint.h"
#include "obs/straggler.h"
#include "serve/health.h"
#include "serve/server.h"

namespace neo::serve {

struct RouterOptions {
    /** Max dispatch attempts per request (first try included). */
    size_t max_attempts = 4;
    /** Backoff before redispatch attempt k: retry_backoff doubled per
     *  prior attempt, clamped to max_retry_backoff (saturating — never
     *  overflows for any attempt count). */
    std::chrono::milliseconds retry_backoff{1};
    std::chrono::milliseconds max_retry_backoff{250};
    /** Pump-thread health tick period (replica gauges, straggler
     *  verdicts, failed-replica quarantine). */
    std::chrono::milliseconds health_period{20};
    HealthOptions health;
    /** Weighted-pick RNG seed (deterministic dispatch for tests). */
    uint64_t seed = 0x5eedf1ee7ull;
};

/** Backoff before redispatch attempt `attempt` (1-based). */
std::chrono::milliseconds RouterBackoffDelay(const RouterOptions& options,
                                             size_t attempt);

/**
 * Front end over N replica Servers. Thread-safe: any client thread may
 * Submit; a background pump thread reaps completions, replays failed
 * requests, and maintains health; a publisher lane runs warm-up
 * publishes. Replicas are not owned — add them all before the first
 * Submit and keep them (and their worlds) alive until Stop().
 */
class FleetRouter
{
  public:
    explicit FleetRouter(const RouterOptions& options = RouterOptions());
    ~FleetRouter();

    FleetRouter(const FleetRouter&) = delete;
    FleetRouter& operator=(const FleetRouter&) = delete;

    /**
     * Register a replica (call before the first Submit). `world` is
     * optional: when given, the router polls its straggler verdicts
     * into the replica's health. Returns the replica id.
     */
    size_t AddReplica(std::string name, Server* server,
                      comm::ThreadedWorld* world = nullptr);

    size_t NumReplicas() const;

    /**
     * Route one request. On kAccepted the ticket's future ALWAYS
     * completes with a typed Response: kOk (possibly after transparent
     * failover), kStopped / kVersionUnavailable passed through, or
     * kFailed when every attempt was exhausted. Sheds only when every
     * live replica refuses admission.
     */
    Ticket Submit(Request request);

    /**
     * Warm-then-flip: Prewarm `snapshot` on every live replica, then
     * Publish it to each (atomic per-replica flip; in-flight batches
     * finish on their version). Blocking; returns the number of
     * replicas now serving the version. Safe while traffic flows — the
     * warm-up rides idle collective slots.
     */
    size_t Publish(std::shared_ptr<const ModelSnapshot> snapshot);

    /** Queue a warm-then-flip on the publisher lane and return
     *  immediately; the lane applies publishes in order. */
    void PublishAsync(std::shared_ptr<const ModelSnapshot> snapshot);

    /**
     * Cut a snapshot from a published CheckpointStore (next fleet
     * version, serving plan `plan`) and warm-then-flip it. Returns the
     * published version. Pair with CheckpointStore::Generation() to
     * poll for fresh trainer output.
     */
    uint64_t PublishFromStore(const core::CheckpointStore& store,
                              const core::DlrmConfig& config,
                              const sharding::ShardingPlan& plan);

    /** Smallest version strictly above every replica's current one. */
    uint64_t NextVersion() const;

    /** Drain in-flight requests and stop the pump/publisher threads.
     *  Idempotent; the destructor calls it. Does not stop the replicas
     *  (caller-owned). */
    void Stop();

    ReplicaState StateOf(size_t replica) const;
    double WeightOf(size_t replica) const;
    /** Replicas currently dispatchable (kHealthy or kSuspect). */
    size_t HealthyCount() const;

    struct Totals {
        uint64_t submitted = 0;
        uint64_t completed_ok = 0;
        /** Requests replayed onto another replica at least once. */
        uint64_t failovers = 0;
        /** Redispatch attempts issued. */
        uint64_t retries = 0;
        /** Requests shed at the router (every replica refused). */
        uint64_t router_shed = 0;
        /** Requests terminally failed (attempts exhausted). */
        uint64_t failed = 0;
        /** Replicas moved to quarantine. */
        uint64_t quarantines = 0;
    };
    Totals totals() const;

  private:
    struct Replica {
        std::string name;
        Server* server = nullptr;
        comm::ThreadedWorld* world = nullptr;
        ReplicaHealth health;
        Replica(std::string n, Server* s, comm::ThreadedWorld* w,
                const HealthOptions& h)
            : name(std::move(n)), server(s), world(w), health(h) {}
    };

    /** One routed request the pump thread shepherds to completion. */
    struct Flight {
        Request request;
        std::promise<Response> done;
        std::future<Response> pending;
        size_t replica = 0;
        /** Dispatch attempts so far (>= 1 once dispatched). */
        size_t attempts = 1;
        /** True while waiting out a backoff before redispatch. */
        bool waiting = false;
        std::chrono::steady_clock::time_point not_before;
    };

    void PumpLoop();
    void PublishLoop();
    /** Reap ready futures; redispatch / complete as their status says. */
    void PumpFlights();
    /** Periodic health maintenance + gauge exposition. */
    void HealthTick();
    /**
     * Try to place `request` on a live replica, best weight first,
     * falling through sheds. Returns the accepted ticket and sets
     * `replica_out`; admission != kAccepted when everyone refused.
     */
    Ticket TryDispatch(const Request& request, size_t* replica_out);
    /** Move a replica to quarantine (idempotent) + record the event. */
    void QuarantineReplica(size_t replica, const std::string& reason);
    void PublishGauges();
    /** Uniform [0,1) from the router's deterministic xorshift state. */
    double NextUniform();

    RouterOptions options_;
    mutable std::mutex replicas_mutex_;
    std::vector<std::unique_ptr<Replica>> replicas_;

    mutable std::mutex flights_mutex_;
    std::condition_variable flights_cv_;
    std::list<Flight> flights_;

    std::mutex publish_mutex_;
    std::condition_variable publish_cv_;
    std::deque<std::shared_ptr<const ModelSnapshot>> publish_queue_;

    std::mutex rng_mutex_;
    uint64_t rng_state_;

    std::atomic<bool> stop_{false};
    std::thread pump_;
    std::thread publisher_;
    std::chrono::steady_clock::time_point last_health_tick_;

    mutable std::mutex totals_mutex_;
    Totals totals_;
};

/**
 * Convenience owner of one replica: a StragglerDetector, a
 * ThreadedWorld wired to it, a Server, and one rank thread per rank
 * running Server::RankLoop. Add the server/world pair to a FleetRouter
 * via AddReplica(). Stop() (or destruction) stops the server and joins
 * the rank threads; a replica whose world died mid-batch joins
 * immediately (its loops already returned).
 */
class ReplicaHost
{
  public:
    ReplicaHost(size_t num_dense, size_t num_tables, int world_size,
                const ServerOptions& server_options,
                comm::ThreadedWorld::Options world_options =
                    comm::ThreadedWorld::Options());
    ~ReplicaHost();

    ReplicaHost(const ReplicaHost&) = delete;
    ReplicaHost& operator=(const ReplicaHost&) = delete;

    Server& server() { return *server_; }
    comm::ThreadedWorld& world() { return *world_; }
    obs::StragglerDetector& detector() { return *detector_; }

    /** Stop the server and join the rank threads (idempotent). */
    void Stop();

  private:
    std::unique_ptr<obs::StragglerDetector> detector_;
    std::unique_ptr<comm::ThreadedWorld> world_;
    std::unique_ptr<Server> server_;
    std::vector<std::thread> threads_;
    std::mutex stop_mutex_;
    bool stopped_ = false;
};

}  // namespace neo::serve
