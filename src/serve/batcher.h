/**
 * @file
 * Dynamic micro-batching for inference requests. Single requests arrive
 * as one-sample jagged inputs; embedding lookups and GEMMs only earn
 * their throughput at batch granularity, so the batcher coalesces
 * requests and flushes when either `max_batch` requests are waiting or
 * the oldest has waited `max_delay_us` — the classic latency/throughput
 * knob serving deployments sweep (Table 4 is measured in QPS at a
 * latency budget). Per-sample scores are bitwise independent of batch
 * composition (fixed plan), so batching never changes an answer, only
 * when it arrives.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "data/jagged.h"
#include "tensor/matrix.h"

namespace neo::serve {

/** One inference request: a single sample. */
struct Request {
    uint64_t id = 0;
    /** Dense features, length num_dense. */
    std::vector<float> dense;
    /** Sparse features: a batch-1 KeyedJagged with num_tables tables. */
    data::KeyedJagged sparse;
    /**
     * Snapshot version this request must be scored on (A/B pinning).
     * 0 = unpinned, serve on the current version. A pinned version that
     * the registry no longer retains completes with
     * ResponseStatus::kVersionUnavailable.
     */
    uint64_t pinned_version = 0;
};

/**
 * Terminal classification of an admitted request. Every admitted request
 * gets exactly one Response — the promise is never dropped and never
 * carries an exception — so `status` is the only thing a client (or the
 * FleetRouter) needs to inspect to decide retry vs give-up.
 */
enum class ResponseStatus : uint8_t {
    /** Scored; `score`/`snapshot_version` are valid. */
    kOk = 0,
    /** Server stopped before this request could be served (e.g. no
     *  snapshot was ever published). Administrative, not retryable on
     *  the same server. */
    kStopped,
    /** The serving world died mid-flight; the request was NOT scored and
     *  is safe to resubmit verbatim to another replica. */
    kReplicaFailed,
    /** Pinned snapshot version is no longer retained by the registry. */
    kVersionUnavailable,
    /** Router-level terminal failure: retry attempts exhausted. */
    kFailed,
};

/** Human-readable name for a response status. */
const char* ResponseStatusName(ResponseStatus status);

/** The answer to one request. */
struct Response {
    uint64_t id = 0;
    /** Terminal classification; fields below are valid only for kOk. */
    ResponseStatus status = ResponseStatus::kOk;
    /** Predicted CTR, sigmoid(logit). */
    float score = 0.0f;
    /** Snapshot version that scored this request. */
    uint64_t snapshot_version = 0;
    /** Time spent queued before batch dispatch. */
    double queue_seconds = 0.0;
    /** Submit-to-completion latency. */
    double total_seconds = 0.0;
};

struct BatcherOptions {
    /** Flush when this many requests are waiting. */
    size_t max_batch = 32;
    /** Flush when the oldest waiting request is this old. */
    int64_t max_delay_us = 1000;
};

/** A queued request plus its completion promise (move-only). */
struct Pending {
    Request request;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueue;
};

/**
 * Thread-safe request queue with size/age flush triggers. Producers
 * Push; one consumer (the dispatch rank) pops batches via NextBatch.
 * Stop() drains: already-queued requests still come out of NextBatch
 * (zero-drop), only new Pushes are refused.
 */
class Batcher
{
  public:
    explicit Batcher(const BatcherOptions& options) : options_(options) {}

    /** Enqueue; false (request untouched) if the batcher is stopped. */
    bool Push(Pending pending);

    /** Requests currently waiting. */
    size_t size() const;

    /** Refuse new requests; queued ones still drain through NextBatch. */
    void Stop();

    bool stopped() const;

    /**
     * Pop the next micro-batch (up to max_batch requests, oldest first).
     * Blocks until a flush trigger fires, but at most `max_wait` — on
     * timeout returns false with `out` empty, letting the caller run its
     * idle work (collective heartbeats) and call again. After Stop(),
     * drains remaining requests batch by batch, then returns false.
     */
    bool NextBatch(std::vector<Pending>& out,
                   std::chrono::milliseconds max_wait);

    const BatcherOptions& options() const { return options_; }

    /**
     * Merge a popped batch (plus `pad` trailing zero samples, used to
     * round the batch up to a multiple of the world size) into the
     * combined-batch format the forward path consumes: an
     * (n + pad) x num_dense dense matrix and one KeyedJagged over all
     * samples. Padding is benign: per-sample forward independence means
     * pad rows change no real sample's score.
     */
    static void Merge(const std::vector<Pending>& batch, size_t pad,
                      size_t num_dense, size_t num_tables, Matrix& dense,
                      data::KeyedJagged& sparse);

  private:
    BatcherOptions options_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Pending> queue_;
    bool stopped_ = false;
};

}  // namespace neo::serve
