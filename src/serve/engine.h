/**
 * @file
 * Forward-only sharded inference over a frozen snapshot. One engine per
 * rank; Forward is collective (mirrors the trainer's hybrid-parallel
 * data flow through the shared ShardRouter — input AllToAll, local
 * pooled lookup, pooled AllToAll, interaction, top MLP — then an
 * AllGather so every rank holds the full batch's logits). No optimizer
 * state exists and no parameter is ever written: snapshot tables are
 * read via const row accessors, so all ranks share them race-free.
 *
 * Tables whose shard exceeds `ddr_threshold_bytes` are served through
 * the tiered cache path (cache::TieredEmbeddingBag over a
 * CachedEmbeddingStore copy) — the DDR-resident serving story of
 * Sec. 4.1.3 — which is bitwise identical to direct lookup because the
 * cache is lossless.
 */
#pragma once

#include <memory>
#include <vector>

#include "cache/tiered_embedding_bag.h"
#include "comm/process_group.h"
#include "core/shard_router.h"
#include "ops/mlp.h"
#include "serve/snapshot.h"
#include "tensor/interaction.h"

namespace neo::serve {

struct EngineOptions {
    /** Wire precision of the pooled-embedding AllToAll. */
    Precision forward_alltoall = Precision::kFp32;
    /**
     * Shards at least this many parameter bytes serve through the
     * HBM-cache-over-DDR tiered path instead of direct reads. 0 (the
     * default) disables tiering.
     */
    size_t ddr_threshold_bytes = 0;
    /** Cache geometry for tiered shards. */
    cache::CacheConfig cache;
    /** Modeled HBM capacity/bandwidth for tier accounting. */
    double hbm_capacity_bytes = 32e6;
    double hbm_bandwidth = 850e9;
    /** Modeled DDR-over-PCIe capacity/bandwidth for tier accounting. */
    double ddr_capacity_bytes = 1e9;
    double ddr_bandwidth = 16e9;
};

/** Per-rank forward-only executor. */
class InferenceEngine
{
  public:
    /** @param pg This rank's communicator (not owned; must outlive). */
    InferenceEngine(const EngineOptions& options, comm::ProcessGroup& pg);

    /**
     * Score a dispatched batch (collective; every rank passes the SAME
     * snapshot and global batch). The global batch size must be a
     * multiple of the world size; each rank computes its b_local slice
     * and the final AllGather leaves all b_global logits in
     * `logits_out` on every rank, rank-0 sample order preserved.
     */
    void Forward(const std::shared_ptr<const ModelSnapshot>& snapshot,
                 const Matrix& global_dense,
                 const data::KeyedJagged& global_sparse,
                 std::vector<float>& logits_out);

    /**
     * Pre-build the version state for `snapshot` off the serve path
     * (local, non-collective). The next Forward on that version promotes
     * the prepared state instead of paying the cold build inline — the
     * snapshot warm-up that removes the first-request latency cliff
     * after a Publish. Building is identical to the inline path, so a
     * warmed Forward is bitwise identical to a cold one. No-op if the
     * engine is already on (or warmed for) that version.
     */
    void Prefetch(const std::shared_ptr<const ModelSnapshot>& snapshot);

    /** Aggregate tiered-cache hit rate across local shards ([0,1];
     *  0 when no shard is tiered). */
    double CacheHitRate() const;

  private:
    /** Tiered serving state for one DDR-resident shard. Heap-pinned:
     *  the store holds pointers to the tiers. */
    struct Tiered {
        cache::MemoryTier hbm;
        cache::MemoryTier ddr;
        cache::CachedRowStore rows;
        cache::TieredEmbeddingBag bag;
        Tiered(const EngineOptions& options,
               const ops::EmbeddingTable& table);
    };

    /** Everything derived from one snapshot version. Rebuilt on version
     *  change (one-slot cache: versions are monotonic and batches use
     *  one snapshot each, so LRU depth 1 suffices). */
    struct VersionState {
        std::shared_ptr<const ModelSnapshot> snapshot;
        std::unique_ptr<ops::Mlp> bottom;
        std::unique_ptr<ops::Mlp> top;
        std::unique_ptr<DotInteraction> interaction;
        std::unique_ptr<core::ShardRouter> router;
        /** This rank's shards (canonical order, == router local order). */
        std::vector<const ModelSnapshot::ShardData*> local_shards;
        /** Parallel to local_shards; null => direct const lookup. */
        std::vector<std::unique_ptr<Tiered>> tiered;
    };

    std::unique_ptr<VersionState> BuildVersionState(
        const std::shared_ptr<const ModelSnapshot>& snapshot);

    EngineOptions options_;
    comm::ProcessGroup& pg_;
    int rank_;
    int world_;
    std::unique_ptr<VersionState> state_;
    /** Warm-built state awaiting promotion (see Prefetch). Only the rank
     *  loop thread touches the engine, so no lock. */
    std::unique_ptr<VersionState> next_state_;
};

}  // namespace neo::serve
