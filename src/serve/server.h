/**
 * @file
 * SLO-aware serving frontend. Client threads Submit single requests; a
 * bounded admission queue sheds load under overload instead of letting
 * latency collapse (state machine: Open -> Shedding when the queue hits
 * its cap or the modeled wait exceeds the SLO budget; Shedding -> Open
 * once the queue drains below the resume threshold — hysteresis so the
 * server doesn't flap at the boundary).
 *
 * Serving is collective: every rank runs RankLoop on the shared
 * ThreadedWorld. Rank 0 pops micro-batches, pins the current snapshot,
 * and broadcasts a command float (NOOP heartbeat / SERVE / STOP); the
 * broadcast's internal synchronization is the happens-before edge that
 * publishes the dispatch slot to the other ranks, and the engine's
 * final AllGather is the edge that returns slot ownership to rank 0 —
 * no torn reads, no locks on the serve path. Heartbeats keep the
 * collective world inside its barrier timeout while the queue is idle.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>

#include "comm/process_group.h"
#include "obs/exposition.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace neo::serve {

struct ServerOptions {
    BatcherOptions batcher;
    /** Queue depth that trips shedding. */
    size_t max_queue = 1024;
    /** Depth at which shedding lifts (0 = max_queue / 2). */
    size_t resume_queue = 0;
    /** Modeled-wait SLO that trips shedding, 0 = disabled. The wait
     *  estimate is (queued batches ahead + 1) x EWMA batch seconds. */
    int64_t slo_budget_us = 0;
    /** Idle collective heartbeat period (must stay well under the
     *  world's barrier timeout). */
    std::chrono::milliseconds heartbeat{50};
    EngineOptions engine;

    // ---- telemetry ----

    /** Live exposition directory ("" = NEO_TELEMETRY_DIR; the writer is
     *  inert when neither is set). */
    std::string telemetry_dir;
    /** Live exposition rewrite period; 0 disables the writer. */
    std::chrono::milliseconds telemetry_period{1000};
    /**
     * Consecutive shed responses that count as a "shed storm" and dump
     * one flight-recorder bundle (post-mortem for why admission
     * collapsed). 0 disables. Re-arms once a request is admitted again.
     */
    size_t shed_storm_dump = 0;
};

/** Admission verdict for one Submit. */
enum class Admission {
    kAccepted,
    kShedQueueFull,
    kShedSlo,
    kShedStopped,
};

/** What a client gets back from Submit. */
struct Ticket {
    Admission admission = Admission::kShedStopped;
    /** Valid only when admission == kAccepted. */
    std::future<Response> response;
};

class Server
{
  public:
    /**
     * @param num_dense Dense feature count requests must carry.
     * @param num_tables Sparse feature count requests must carry.
     */
    Server(size_t num_dense, size_t num_tables,
           const ServerOptions& options);

    /** Thread-safe request entry point (any client thread). */
    Ticket Submit(Request request);

    /** Install a new snapshot version (any thread; typically the
     *  trainer's publisher). In-flight batches finish on their version. */
    void Publish(std::shared_ptr<const ModelSnapshot> snapshot);

    std::shared_ptr<const ModelSnapshot> CurrentSnapshot() const
    {
        return registry_.Current();
    }
    uint64_t CurrentVersion() const { return registry_.CurrentVersion(); }
    uint64_t SwapCount() const { return registry_.SwapCount(); }

    /** Currently refusing new requests due to overload? */
    bool shedding() const { return shedding_.load(); }

    /**
     * One rank's serving loop (collective; run on every rank of `pg`,
     * e.g. as the body of ThreadedWorld::Run). Returns after Stop()
     * once all queued requests have been answered — zero drops.
     */
    void RankLoop(int rank, comm::ProcessGroup& pg);

    /**
     * Begin shutdown: new Submits shed kShedStopped; queued requests
     * drain through the rank loops, which then exit. If no snapshot was
     * ever published, still-queued requests fail with broken promises
     * (there is no model to answer them with).
     */
    void Stop();

  private:
    /** Broadcast command values (exact small floats). */
    static constexpr float kCmdNoop = 0.0f;
    static constexpr float kCmdServe = 1.0f;
    static constexpr float kCmdStop = 2.0f;

    /**
     * Batch handoff from rank 0 to the world. Written by rank 0 before
     * the command broadcast (which publishes it), read by all ranks
     * during the batch, and owned by rank 0 again after its AllGather
     * returns (by then every rank is done reading).
     */
    struct DispatchSlot {
        std::shared_ptr<const ModelSnapshot> snapshot;
        Matrix dense;
        data::KeyedJagged sparse;
        size_t pad = 0;
    };

    void CompleteBatch(std::vector<Pending>& batch,
                       const std::vector<float>& logits,
                       std::chrono::steady_clock::time_point dispatched,
                       double batch_seconds);

    /** Bump the shed streak and dump a storm bundle at the threshold. */
    void NoteShed();

    /**
     * Per-version serving stats behind the neo.serve.v<version>.* gauges.
     * Touched only by the rank-0 loop thread inside CompleteBatch, so no
     * lock; bounded to the most recent kVersionStatsKept versions.
     */
    struct VersionStats {
        uint64_t version = 0;
        uint64_t requests = 0;
        std::chrono::steady_clock::time_point first_completion;
        /** Bounded ring of recent request latencies for p50/p99. */
        std::vector<double> latencies;
        size_t next = 0;
    };
    static constexpr size_t kVersionStatsKept = 4;
    static constexpr size_t kVersionLatencyWindow = 1024;

    size_t num_dense_;
    size_t num_tables_;
    ServerOptions options_;
    SnapshotRegistry registry_;
    Batcher batcher_;
    std::atomic<bool> shedding_{false};
    std::atomic<Admission> shed_reason_{Admission::kShedQueueFull};
    /** EWMA of serve-batch wall seconds (rank 0 writes, Submit reads). */
    std::atomic<double> ewma_batch_seconds_{0.0};
    /** Admission totals feeding the neo.serve.shed_rate gauge. */
    std::atomic<uint64_t> admitted_total_{0};
    std::atomic<uint64_t> shed_total_{0};
    /** Consecutive sheds since the last admit (storm detection). */
    std::atomic<uint64_t> shed_streak_{0};
    /** One storm bundle per storm; re-armed by the next admit. */
    std::atomic<bool> storm_dumped_{false};
    std::deque<VersionStats> version_stats_;
    /** Periodic metrics exposition (inert without a telemetry dir). */
    obs::SnapshotWriter exposition_;
    DispatchSlot slot_;
};

}  // namespace neo::serve
