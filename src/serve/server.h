/**
 * @file
 * SLO-aware serving frontend. Client threads Submit single requests; a
 * bounded admission queue sheds load under overload instead of letting
 * latency collapse (state machine: Open -> Shedding when the queue hits
 * its cap or the modeled wait exceeds the SLO budget; Shedding -> Open
 * once the queue drains below the resume threshold — hysteresis so the
 * server doesn't flap at the boundary).
 *
 * Serving is collective: every rank runs RankLoop on the shared
 * ThreadedWorld. Rank 0 pops micro-batches, pins the current snapshot,
 * and broadcasts a command float (NOOP heartbeat / SERVE / STOP); the
 * broadcast's internal synchronization is the happens-before edge that
 * publishes the dispatch slot to the other ranks, and the engine's
 * final AllGather is the edge that returns slot ownership to rank 0 —
 * no torn reads, no locks on the serve path. Heartbeats keep the
 * collective world inside its barrier timeout while the queue is idle.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/process_group.h"
#include "obs/exposition.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace neo::serve {

struct ServerOptions {
    BatcherOptions batcher;
    /** Queue depth that trips shedding. */
    size_t max_queue = 1024;
    /** Depth at which shedding lifts (0 = max_queue / 2). */
    size_t resume_queue = 0;
    /** Modeled-wait SLO that trips shedding, 0 = disabled. The wait
     *  estimate is (queued batches ahead + 1) x EWMA batch seconds. */
    int64_t slo_budget_us = 0;
    /** Idle collective heartbeat period (must stay well under the
     *  world's barrier timeout). */
    std::chrono::milliseconds heartbeat{50};
    EngineOptions engine;

    // ---- fleet / failure handling ----

    /** Replica id this server reports in flight bundles and metrics
     *  when it is one executor of a FleetRouter fleet. */
    int replica_id = 0;
    /**
     * On a transient RankFailure inside the serve collective, how long
     * the ranks wait for an in-place recovery rendezvous before giving
     * up and quarantining the replica. 0 (default) disables in-place
     * recovery: any rank failure quarantines immediately (fail fast —
     * the fleet router replays elsewhere). Must comfortably exceed
     * `heartbeat`, since rank 0 may be in a queue wait when the world
     * poisons.
     */
    std::chrono::milliseconds recover_timeout{0};
    /** Snapshot versions the registry retains for per-request version
     *  pinning (current included). */
    size_t version_history = 4;

    // ---- telemetry ----

    /** Live exposition directory ("" = NEO_TELEMETRY_DIR; the writer is
     *  inert when neither is set). */
    std::string telemetry_dir;
    /** Live exposition rewrite period; 0 disables the writer. */
    std::chrono::milliseconds telemetry_period{1000};
    /**
     * Consecutive shed responses that count as a "shed storm" and dump
     * one flight-recorder bundle (post-mortem for why admission
     * collapsed). 0 disables. Re-arms once a request is admitted again.
     */
    size_t shed_storm_dump = 0;
};

/** Admission verdict for one Submit. */
enum class Admission {
    kAccepted,
    kShedQueueFull,
    kShedSlo,
    kShedStopped,
};

/** What a client gets back from Submit. */
struct Ticket {
    Admission admission = Admission::kShedStopped;
    /** Valid only when admission == kAccepted. */
    std::future<Response> response;
};

class Server
{
  public:
    /**
     * @param num_dense Dense feature count requests must carry.
     * @param num_tables Sparse feature count requests must carry.
     */
    Server(size_t num_dense, size_t num_tables,
           const ServerOptions& options);

    /** Thread-safe request entry point (any client thread). */
    Ticket Submit(Request request);

    /** Install a new snapshot version (any thread; typically the
     *  trainer's publisher). In-flight batches finish on their version. */
    void Publish(std::shared_ptr<const ModelSnapshot> snapshot);

    /**
     * Pre-build `snapshot`'s engine state on every rank WITHOUT routing
     * traffic to it (the warm half of warm-up-then-flip; call Publish
     * afterwards to atomically move traffic). Runs as a low-priority
     * command on the serving collective between batches, so in-flight
     * traffic keeps being served on the current version. Blocks until
     * all ranks are warm; returns false if the server stopped or its
     * world failed before the warm-up could run. Requires a running
     * RankLoop world.
     */
    bool Prewarm(std::shared_ptr<const ModelSnapshot> snapshot);

    std::shared_ptr<const ModelSnapshot> CurrentSnapshot() const
    {
        return registry_.Current();
    }
    uint64_t CurrentVersion() const { return registry_.CurrentVersion(); }
    uint64_t SwapCount() const { return registry_.SwapCount(); }

    /** Currently refusing new requests due to overload? */
    bool shedding() const { return shedding_.load(); }

    /**
     * True once the serving world suffered a permanent rank failure and
     * this replica quarantined itself. All queued/in-flight requests
     * have been (or are being) completed with
     * ResponseStatus::kReplicaFailed; new Submits shed.
     */
    bool failed() const { return failed_.load(); }

    /** Requests drained as kReplicaFailed when the world died. */
    uint64_t RetryableDrained() const
    {
        return retryable_drained_.load();
    }

    /**
     * One rank's serving loop (collective; run on every rank of `pg`,
     * e.g. as the body of ThreadedWorld::Run). Returns after Stop()
     * once all queued requests have been answered — zero drops. A
     * RankFailure inside the serve collective is caught here: the
     * replica attempts in-place recovery when the failure is transient
     * and `recover_timeout` allows it, and otherwise fails fast —
     * rank 0 drains every held request as a typed kReplicaFailed
     * response (retryable by a fleet router), dumps a flight bundle
     * naming the replica, and the loop returns with failed() set.
     * Promises are never broken, even on a dying world.
     */
    void RankLoop(int rank, comm::ProcessGroup& pg);

    /**
     * Begin shutdown: new Submits shed kShedStopped; queued requests
     * drain through the rank loops, which then exit. If no snapshot was
     * ever published, still-queued requests complete with typed
     * ResponseStatus::kStopped responses (there is no model to answer
     * them with, but the future always yields a classified Response —
     * never a broken promise).
     */
    void Stop();

  private:
    /** Broadcast command values (exact small floats). */
    static constexpr float kCmdNoop = 0.0f;
    static constexpr float kCmdServe = 1.0f;
    static constexpr float kCmdStop = 2.0f;
    /** Pre-build the slot snapshot's engine state on every rank. */
    static constexpr float kCmdWarm = 3.0f;

    /**
     * Batch handoff from rank 0 to the world. Written by rank 0 before
     * the command broadcast (which publishes it), read by all ranks
     * during the batch, and owned by rank 0 again after its AllGather
     * returns (by then every rank is done reading).
     */
    struct DispatchSlot {
        std::shared_ptr<const ModelSnapshot> snapshot;
        Matrix dense;
        data::KeyedJagged sparse;
        size_t pad = 0;
    };

    /** A queued snapshot warm-up and its caller's completion signal. */
    struct WarmRequest {
        std::shared_ptr<const ModelSnapshot> snapshot;
        std::promise<bool> promise;
    };

    void CompleteBatch(std::vector<Pending>& batch,
                       const std::vector<float>& logits,
                       std::chrono::steady_clock::time_point dispatched,
                       double batch_seconds);

    /** Complete one unserved request with a typed terminal status. */
    static void CompleteOne(Pending& pending, ResponseStatus status);

    /** Complete-and-clear a whole group of unserved requests. */
    static void CompleteUnserved(std::vector<Pending>& batch,
                                 ResponseStatus status);

    /**
     * Form the next dispatch group (rank 0): resolve the front staged
     * request's pinned version, answer kVersionUnavailable for pins the
     * registry no longer retains, and move every staged request with
     * the same pin into `serving` (order preserved; unpinned requests
     * group together on the current version). Sets serving_snapshot_
     * and returns true when a dispatchable group formed.
     */
    bool StageServing(std::vector<Pending>& staged,
                      std::vector<Pending>& serving);

    /**
     * React to a RankFailure caught in RankLoop. Returns true when the
     * world recovered in place (caller continues the loop with its
     * staged/serving groups intact — recompute is safe because scores
     * are deterministic). Otherwise quarantines the replica: sets
     * failed(), stops the batcher, and (rank 0) drains every held
     * request as kReplicaFailed plus a flight bundle; returns false and
     * the caller exits.
     */
    bool HandleWorldFailure(int rank, comm::ProcessGroup& pg,
                            const comm::RankFailure& failure,
                            std::vector<Pending>& staged,
                            std::vector<Pending>& serving);

    /** Pop the next queued warm-up into active_warm_ (rank 0 loop). */
    bool TakeWarm();

    /** Refuse future Prewarms and fail active + queued warm-ups. */
    void DrainWarm();

    /** Bump the shed streak and dump a storm bundle at the threshold. */
    void NoteShed();

    /**
     * Per-version serving stats behind the neo.serve.v<version>.* gauges.
     * Touched only by the rank-0 loop thread inside CompleteBatch, so no
     * lock; bounded to the most recent kVersionStatsKept versions.
     */
    struct VersionStats {
        uint64_t version = 0;
        uint64_t requests = 0;
        std::chrono::steady_clock::time_point first_completion;
        /** Bounded ring of recent request latencies for p50/p99. */
        std::vector<double> latencies;
        size_t next = 0;
    };
    static constexpr size_t kVersionStatsKept = 4;
    static constexpr size_t kVersionLatencyWindow = 1024;

    size_t num_dense_;
    size_t num_tables_;
    ServerOptions options_;
    SnapshotRegistry registry_;
    Batcher batcher_;
    std::atomic<bool> shedding_{false};
    std::atomic<Admission> shed_reason_{Admission::kShedQueueFull};
    /** EWMA of serve-batch wall seconds (rank 0 writes, Submit reads). */
    std::atomic<double> ewma_batch_seconds_{0.0};
    /** Admission totals feeding the neo.serve.shed_rate gauge. */
    std::atomic<uint64_t> admitted_total_{0};
    std::atomic<uint64_t> shed_total_{0};
    /** Consecutive sheds since the last admit (storm detection). */
    std::atomic<uint64_t> shed_streak_{0};
    /** One storm bundle per storm; re-armed by the next admit. */
    std::atomic<bool> storm_dumped_{false};
    std::deque<VersionStats> version_stats_;
    /** Periodic metrics exposition (inert without a telemetry dir). */
    obs::SnapshotWriter exposition_;
    DispatchSlot slot_;

    /** Set when the world permanently failed (replica quarantined). */
    std::atomic<bool> failed_{false};
    /** Requests completed as kReplicaFailed by the failure drain. */
    std::atomic<uint64_t> retryable_drained_{0};
    /** Snapshot the current `serving` group was formed against (rank-0
     *  loop thread only; survives in-place recovery so a redispatch is
     *  bitwise identical). */
    std::shared_ptr<const ModelSnapshot> serving_snapshot_;
    /** Warm-up handoff from Prewarm callers to the rank-0 loop. */
    std::mutex warm_mutex_;
    std::deque<WarmRequest> warm_queue_;
    bool accepting_warm_ = true;
    /** Warm-up currently on the collective (rank-0 loop thread only). */
    std::unique_ptr<WarmRequest> active_warm_;
};

}  // namespace neo::serve
