/**
 * @file
 * Per-replica health scoring for the serving fleet. Each replica of a
 * FleetRouter carries a ReplicaHealth that folds three signals into one
 * dispatch weight:
 *
 *  - latency EWMA of completed requests (slower replica -> less traffic),
 *  - shed rate (a replica refusing admission is overloaded),
 *  - straggler verdicts from the replica world's own StragglerDetector
 *    (a persistently-suspect rank decays the whole replica's weight —
 *    the rank drags every collective batch, so the replica is slow even
 *    when its queue looks healthy).
 *
 * State machine (DESIGN.md §4j):
 *
 *   kHealthy -> kSuspect      straggler verdict persists
 *   kSuspect -> kHealthy      verdicts clear
 *   any      -> kQuarantined  world failed (RankFailure) / recover expiry
 *   kQuarantined -> kDrained  router finished replaying its in-flights
 *
 * Quarantine is terminal for dispatch: Weight() is 0 from then on.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace neo::serve {

/** Lifecycle of one fleet replica (see file comment). */
enum class ReplicaState {
    kHealthy,
    kSuspect,
    kQuarantined,
    kDrained,
};

/** Human-readable name for a replica state. */
const char* ReplicaStateName(ReplicaState state);

struct HealthOptions {
    /** EWMA smoothing for completed-request latency. */
    double latency_alpha = 0.2;
    /** Weight divisor slope per unit shed rate: weight /=
     *  (1 + shed_penalty * shed_rate). */
    double shed_penalty = 4.0;
    /** Multiplicative weight decay per consecutive flagged straggler
     *  verdict once suspect (recovers when verdicts clear). */
    double straggler_decay = 0.5;
    /** Consecutive flagged verdicts before kHealthy -> kSuspect. */
    int suspect_after = 2;
    /** Weight floor for non-quarantined replicas (keeps a slow replica
     *  probeable so its EWMA can recover). */
    double min_weight = 1e-3;
    /** Latency normalizer: a replica at this EWMA has weight ~1. */
    double baseline_latency_seconds = 1e-3;
};

/**
 * Thread-safe health score for one replica. The router's pump thread
 * drives state transitions; client threads read Weight() on the
 * dispatch path.
 */
class ReplicaHealth
{
  public:
    explicit ReplicaHealth(const HealthOptions& options = HealthOptions());

    /** One completed (kOk) request's total latency. */
    void RecordLatency(double seconds);

    /** One admitted request. */
    void RecordAdmit();

    /** One shed (refused admission). */
    void RecordShed();

    /** World failure: -> kQuarantined (idempotent). */
    void MarkFailed();

    /** Router replayed the last in-flight: kQuarantined -> kDrained. */
    void MarkDrained();

    /**
     * One straggler-detector verdict for the replica's world. Flagged
     * verdicts must persist `suspect_after` consecutive ticks to move
     * kHealthy -> kSuspect (one late barrier is noise); each further
     * flagged tick decays the weight by `straggler_decay`. A clear
     * verdict resets the streak and returns the replica to kHealthy.
     */
    void NoteStragglerVerdict(bool flagged);

    /**
     * Relative dispatch weight in [0, 1]: 0 when quarantined/drained,
     * otherwise baseline/EWMA damped by shed rate and straggler decay,
     * floored at min_weight.
     */
    double Weight() const;

    ReplicaState state() const;
    double LatencyEwma() const;
    double ShedRate() const;

  private:
    HealthOptions options_;
    mutable std::mutex mutex_;
    ReplicaState state_ = ReplicaState::kHealthy;
    double latency_ewma_ = 0.0;
    uint64_t admitted_ = 0;
    uint64_t shed_ = 0;
    int flagged_streak_ = 0;
    /** Cumulative straggler decay factor (1 = none). */
    double straggler_factor_ = 1.0;
};

}  // namespace neo::serve
