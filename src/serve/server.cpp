#include "serve/server.h"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neo::serve {

Server::Server(size_t num_dense, size_t num_tables,
               const ServerOptions& options)
    : num_dense_(num_dense),
      num_tables_(num_tables),
      options_(options),
      batcher_(options.batcher)
{
    NEO_REQUIRE(options_.max_queue > 0, "max_queue must be positive");
    if (options_.resume_queue == 0) {
        options_.resume_queue = options_.max_queue / 2;
    }
    NEO_REQUIRE(options_.resume_queue < options_.max_queue,
                "resume_queue must be below max_queue for hysteresis");
    if (options_.telemetry_period.count() > 0) {
        obs::SnapshotWriter::Options writer;
        writer.directory = options_.telemetry_dir;
        writer.period = options_.telemetry_period;
        writer.basename = "serve_metrics";
        exposition_.Start(writer);  // inert without a telemetry dir
    }
}

Ticket
Server::Submit(Request request)
{
    auto& metrics = obs::MetricsRegistry::Get();
    Ticket ticket;
    if (batcher_.stopped()) {
        ticket.admission = Admission::kShedStopped;
        metrics.GetCounter("neo.serve.shed_stopped").Add();
        NoteShed();
        return ticket;
    }

    const size_t depth = batcher_.size();
    metrics.GetGauge("neo.serve.queue_depth")
        .Set(static_cast<double>(depth));
    if (shedding_.load()) {
        if (depth <= options_.resume_queue) {
            shedding_.store(false);
        } else {
            ticket.admission = shed_reason_.load();
            metrics
                .GetCounter(ticket.admission == Admission::kShedSlo
                                ? "neo.serve.shed_slo"
                                : "neo.serve.shed_queue")
                .Add();
            NoteShed();
            return ticket;
        }
    }
    if (depth >= options_.max_queue) {
        shedding_.store(true);
        shed_reason_.store(Admission::kShedQueueFull);
        ticket.admission = Admission::kShedQueueFull;
        metrics.GetCounter("neo.serve.shed_queue").Add();
        NoteShed();
        return ticket;
    }
    if (options_.slo_budget_us > 0) {
        const double ewma = ewma_batch_seconds_.load();
        const double batches_ahead = static_cast<double>(
            depth / options_.batcher.max_batch + 1);
        const double wait_estimate_us = batches_ahead * ewma * 1e6;
        if (ewma > 0.0 &&
            wait_estimate_us > static_cast<double>(options_.slo_budget_us)) {
            shedding_.store(true);
            shed_reason_.store(Admission::kShedSlo);
            ticket.admission = Admission::kShedSlo;
            metrics.GetCounter("neo.serve.shed_slo").Add();
            NoteShed();
            return ticket;
        }
    }

    Pending pending;
    pending.request = std::move(request);
    pending.enqueue = std::chrono::steady_clock::now();
    ticket.response = pending.promise.get_future();
    if (!batcher_.Push(std::move(pending))) {
        // Stopped between the check above and the push; the pending (and
        // its promise) died unfulfilled, so reset the future too.
        ticket = Ticket{};
        ticket.admission = Admission::kShedStopped;
        metrics.GetCounter("neo.serve.shed_stopped").Add();
        NoteShed();
        return ticket;
    }
    ticket.admission = Admission::kAccepted;
    metrics.GetCounter("neo.serve.admitted").Add();
    // An admit ends any shed storm: reset the streak and re-arm the
    // one-bundle-per-storm latch.
    shed_streak_.store(0, std::memory_order_relaxed);
    storm_dumped_.store(false, std::memory_order_relaxed);
    const uint64_t admitted =
        admitted_total_.fetch_add(1, std::memory_order_relaxed) + 1;
    const uint64_t shed = shed_total_.load(std::memory_order_relaxed);
    metrics.GetGauge("neo.serve.shed_rate")
        .Set(static_cast<double>(shed) /
             static_cast<double>(admitted + shed));
    return ticket;
}

void
Server::NoteShed()
{
    const uint64_t shed =
        shed_total_.fetch_add(1, std::memory_order_relaxed) + 1;
    const uint64_t admitted = admitted_total_.load(std::memory_order_relaxed);
    obs::MetricsRegistry::Get()
        .GetGauge("neo.serve.shed_rate")
        .Set(static_cast<double>(shed) /
             static_cast<double>(admitted + shed));
    const uint64_t streak =
        shed_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.shed_storm_dump == 0 ||
        streak < options_.shed_storm_dump) {
        return;
    }
    // One bundle per storm: the first thread to cross the threshold wins
    // the latch; everyone else returns.
    bool expected = false;
    if (!storm_dumped_.compare_exchange_strong(expected, true,
                                               std::memory_order_relaxed)) {
        return;
    }
    auto& recorder = obs::FlightRecorder::Get();
    const std::string detail =
        "shed storm: " + std::to_string(streak) +
        " consecutive sheds (queue depth " +
        std::to_string(batcher_.size()) + ")";
    recorder.RecordEvent(0, "shed_storm", detail);
    recorder.DumpBundle(0, detail);
}

void
Server::Publish(std::shared_ptr<const ModelSnapshot> snapshot)
{
    registry_.Publish(std::move(snapshot));
}

void
Server::Stop()
{
    batcher_.Stop();
}

void
Server::CompleteBatch(std::vector<Pending>& batch,
                      const std::vector<float>& logits,
                      std::chrono::steady_clock::time_point dispatched,
                      double batch_seconds)
{
    auto& metrics = obs::MetricsRegistry::Get();
    const auto now = std::chrono::steady_clock::now();
    const uint64_t version = slot_.snapshot->version;
    // EWMA of batch wall time feeds the SLO wait estimate. Seeded with
    // the first sample so admission reacts from batch one; stored BEFORE
    // the promises resolve so a client that has its response is
    // guaranteed the estimate is armed. CAS loop rather than load+store:
    // with several worker replicas completing batches concurrently, a
    // plain read-modify-write lets one completion overwrite (lose)
    // another's sample instead of folding both into the average.
    double prev = ewma_batch_seconds_.load(std::memory_order_relaxed);
    double next;
    do {
        next = prev == 0.0 ? batch_seconds
                           : 0.8 * prev + 0.2 * batch_seconds;
    } while (!ewma_batch_seconds_.compare_exchange_weak(
        prev, next, std::memory_order_relaxed));
    for (size_t i = 0; i < batch.size(); i++) {
        Response response;
        response.id = batch[i].request.id;
        response.score =
            1.0f / (1.0f + std::exp(-logits[i]));
        response.snapshot_version = version;
        response.queue_seconds =
            std::chrono::duration<double>(dispatched - batch[i].enqueue)
                .count();
        response.total_seconds =
            std::chrono::duration<double>(now - batch[i].enqueue).count();
        metrics.GetHistogram("neo.serve.request_seconds")
            .Observe(response.total_seconds);
        batch[i].promise.set_value(std::move(response));
    }
    metrics.GetCounter("neo.serve.batches").Add();
    metrics.GetHistogram("neo.serve.batch_seconds").Observe(batch_seconds);
    metrics.GetHistogram("neo.serve.batch_size")
        .Observe(static_cast<double>(batch.size()));

    // Per-version gauges for the scrape plane: a router watching the
    // exposition can see each model version's throughput and tails and
    // decide when a freshly-published version has warmed up. Only the
    // rank-0 loop thread runs here, so version_stats_ needs no lock.
    VersionStats* stats = nullptr;
    for (auto& vs : version_stats_) {
        if (vs.version == version) {
            stats = &vs;
            break;
        }
    }
    if (stats == nullptr) {
        version_stats_.push_back(VersionStats{});
        stats = &version_stats_.back();
        stats->version = version;
        stats->first_completion = now;
        if (version_stats_.size() > kVersionStatsKept) {
            version_stats_.pop_front();
            stats = &version_stats_.back();
        }
    }
    for (size_t i = 0; i < batch.size(); i++) {
        const double latency =
            std::chrono::duration<double>(now - batch[i].enqueue).count();
        if (stats->latencies.size() < kVersionLatencyWindow) {
            stats->latencies.push_back(latency);
        } else {
            stats->latencies[stats->next] = latency;
        }
        stats->next = (stats->next + 1) % kVersionLatencyWindow;
    }
    stats->requests += batch.size();
    const std::string prefix =
        "neo.serve.v" + std::to_string(version) + ".";
    const double elapsed =
        std::chrono::duration<double>(now - stats->first_completion)
            .count();
    metrics.GetGauge(prefix + "qps")
        .Set(elapsed > 0.0 ? static_cast<double>(stats->requests) / elapsed
                           : static_cast<double>(stats->requests));
    metrics.GetGauge(prefix + "p50_seconds")
        .Set(Percentile(stats->latencies, 50.0));
    metrics.GetGauge(prefix + "p99_seconds")
        .Set(Percentile(stats->latencies, 99.0));
}

void
Server::RankLoop(int rank, comm::ProcessGroup& pg)
{
    InferenceEngine engine(options_.engine, pg);
    const size_t world = static_cast<size_t>(pg.Size());
    std::vector<Pending> staged;
    std::vector<float> logits;

    for (;;) {
        float cmd = kCmdNoop;
        std::chrono::steady_clock::time_point dispatched;
        if (rank == 0) {
            if (staged.empty()) {
                batcher_.NextBatch(staged, options_.heartbeat);
            }
            auto snapshot = registry_.Current();
            if (!staged.empty() && snapshot) {
                cmd = kCmdServe;
                dispatched = std::chrono::steady_clock::now();
                slot_.snapshot = std::move(snapshot);
                slot_.pad = (world - staged.size() % world) % world;
                Batcher::Merge(staged, slot_.pad, num_dense_, num_tables_,
                               slot_.dense, slot_.sparse);
            } else if (batcher_.stopped() && batcher_.size() == 0) {
                if (!staged.empty()) {
                    // Stopped before any snapshot was published: there is
                    // no model to answer with — fail the stragglers
                    // explicitly rather than hanging their futures.
                    for (auto& pending : staged) {
                        pending.promise.set_exception(
                            std::make_exception_ptr(std::runtime_error(
                                "server stopped before a model snapshot "
                                "was published")));
                    }
                    staged.clear();
                }
                cmd = kCmdStop;
            }
        }
        pg.Broadcast(&cmd, 1, /*root=*/0);
        if (cmd == kCmdStop) {
            break;
        }
        if (cmd == kCmdNoop) {
            continue;
        }

        // SERVE: the broadcast published slot_ to every rank; pin the
        // snapshot locally so a concurrent Publish cannot free it
        // mid-batch.
        const auto snapshot = slot_.snapshot;
        const auto batch_start = std::chrono::steady_clock::now();
        {
            NEO_TRACE_SPAN("serve_batch", "step");
            engine.Forward(snapshot, slot_.dense, slot_.sparse, logits);
        }
        // Engine's trailing AllGather: every rank is past its slot_
        // reads, so rank 0 may rewrite the slot next iteration.
        if (rank == 0) {
            const double batch_seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - batch_start)
                    .count();
            CompleteBatch(staged, logits, dispatched, batch_seconds);
            staged.clear();
        }
    }
}

}  // namespace neo::serve
