#include "serve/server.h"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neo::serve {

Server::Server(size_t num_dense, size_t num_tables,
               const ServerOptions& options)
    : num_dense_(num_dense),
      num_tables_(num_tables),
      options_(options),
      batcher_(options.batcher)
{
    NEO_REQUIRE(options_.max_queue > 0, "max_queue must be positive");
    if (options_.resume_queue == 0) {
        options_.resume_queue = options_.max_queue / 2;
    }
    NEO_REQUIRE(options_.resume_queue < options_.max_queue,
                "resume_queue must be below max_queue for hysteresis");
    registry_.SetHistoryDepth(options_.version_history);
    if (options_.telemetry_period.count() > 0) {
        obs::SnapshotWriter::Options writer;
        writer.directory = options_.telemetry_dir;
        writer.period = options_.telemetry_period;
        writer.basename = "serve_metrics";
        exposition_.Start(writer);  // inert without a telemetry dir
    }
}

Ticket
Server::Submit(Request request)
{
    auto& metrics = obs::MetricsRegistry::Get();
    Ticket ticket;
    if (batcher_.stopped()) {
        ticket.admission = Admission::kShedStopped;
        metrics.GetCounter("neo.serve.shed_stopped").Add();
        NoteShed();
        return ticket;
    }

    const size_t depth = batcher_.size();
    metrics.GetGauge("neo.serve.queue_depth")
        .Set(static_cast<double>(depth));
    if (shedding_.load()) {
        if (depth <= options_.resume_queue) {
            shedding_.store(false);
        } else {
            ticket.admission = shed_reason_.load();
            metrics
                .GetCounter(ticket.admission == Admission::kShedSlo
                                ? "neo.serve.shed_slo"
                                : "neo.serve.shed_queue")
                .Add();
            NoteShed();
            return ticket;
        }
    }
    if (depth >= options_.max_queue) {
        shedding_.store(true);
        shed_reason_.store(Admission::kShedQueueFull);
        ticket.admission = Admission::kShedQueueFull;
        metrics.GetCounter("neo.serve.shed_queue").Add();
        NoteShed();
        return ticket;
    }
    if (options_.slo_budget_us > 0) {
        const double ewma = ewma_batch_seconds_.load();
        const double batches_ahead = static_cast<double>(
            depth / options_.batcher.max_batch + 1);
        const double wait_estimate_us = batches_ahead * ewma * 1e6;
        if (ewma > 0.0 &&
            wait_estimate_us > static_cast<double>(options_.slo_budget_us)) {
            shedding_.store(true);
            shed_reason_.store(Admission::kShedSlo);
            ticket.admission = Admission::kShedSlo;
            metrics.GetCounter("neo.serve.shed_slo").Add();
            NoteShed();
            return ticket;
        }
    }

    Pending pending;
    pending.request = std::move(request);
    pending.enqueue = std::chrono::steady_clock::now();
    ticket.response = pending.promise.get_future();
    if (!batcher_.Push(std::move(pending))) {
        // Stopped between the check above and the push; the pending (and
        // its promise) died unfulfilled, so reset the future too.
        ticket = Ticket{};
        ticket.admission = Admission::kShedStopped;
        metrics.GetCounter("neo.serve.shed_stopped").Add();
        NoteShed();
        return ticket;
    }
    ticket.admission = Admission::kAccepted;
    metrics.GetCounter("neo.serve.admitted").Add();
    // An admit ends any shed storm: reset the streak and re-arm the
    // one-bundle-per-storm latch.
    shed_streak_.store(0, std::memory_order_relaxed);
    storm_dumped_.store(false, std::memory_order_relaxed);
    const uint64_t admitted =
        admitted_total_.fetch_add(1, std::memory_order_relaxed) + 1;
    const uint64_t shed = shed_total_.load(std::memory_order_relaxed);
    metrics.GetGauge("neo.serve.shed_rate")
        .Set(static_cast<double>(shed) /
             static_cast<double>(admitted + shed));
    return ticket;
}

void
Server::NoteShed()
{
    const uint64_t shed =
        shed_total_.fetch_add(1, std::memory_order_relaxed) + 1;
    const uint64_t admitted = admitted_total_.load(std::memory_order_relaxed);
    obs::MetricsRegistry::Get()
        .GetGauge("neo.serve.shed_rate")
        .Set(static_cast<double>(shed) /
             static_cast<double>(admitted + shed));
    const uint64_t streak =
        shed_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.shed_storm_dump == 0 ||
        streak < options_.shed_storm_dump) {
        return;
    }
    // One bundle per storm: the first thread to cross the threshold wins
    // the latch; everyone else returns.
    bool expected = false;
    if (!storm_dumped_.compare_exchange_strong(expected, true,
                                               std::memory_order_relaxed)) {
        return;
    }
    auto& recorder = obs::FlightRecorder::Get();
    std::string detail =
        "shed storm: " + std::to_string(streak) +
        " consecutive sheds (queue depth " +
        std::to_string(batcher_.size()) + ")";
    // If a fleet router has a straggler suspect, name it: a shed storm
    // on one replica is often the downstream symptom of a slow rank
    // elsewhere soaking up the fleet's dispatch weight.
    auto& metrics = obs::MetricsRegistry::Get();
    if (metrics.GetGauge("neo.fleet.has_suspect").value() >= 1.0) {
        const int suspect = static_cast<int>(
            metrics.GetGauge("neo.fleet.suspect_replica").value());
        detail += "; fleet suspect replica " + std::to_string(suspect);
    }
    recorder.RecordEvent(0, "shed_storm", detail);
    recorder.DumpBundle(0, detail);
}

void
Server::Publish(std::shared_ptr<const ModelSnapshot> snapshot)
{
    registry_.Publish(std::move(snapshot));
}

bool
Server::Prewarm(std::shared_ptr<const ModelSnapshot> snapshot)
{
    NEO_REQUIRE(snapshot != nullptr, "cannot prewarm a null snapshot");
    std::future<bool> done;
    {
        std::lock_guard<std::mutex> lock(warm_mutex_);
        if (!accepting_warm_ || failed_.load() || batcher_.stopped()) {
            return false;
        }
        warm_queue_.push_back(WarmRequest{std::move(snapshot), {}});
        done = warm_queue_.back().promise.get_future();
    }
    return done.get();
}

void
Server::Stop()
{
    batcher_.Stop();
}

void
Server::CompleteBatch(std::vector<Pending>& batch,
                      const std::vector<float>& logits,
                      std::chrono::steady_clock::time_point dispatched,
                      double batch_seconds)
{
    auto& metrics = obs::MetricsRegistry::Get();
    const auto now = std::chrono::steady_clock::now();
    const uint64_t version = slot_.snapshot->version;
    // EWMA of batch wall time feeds the SLO wait estimate. Seeded with
    // the first sample so admission reacts from batch one; stored BEFORE
    // the promises resolve so a client that has its response is
    // guaranteed the estimate is armed. CAS loop rather than load+store:
    // with several worker replicas completing batches concurrently, a
    // plain read-modify-write lets one completion overwrite (lose)
    // another's sample instead of folding both into the average.
    double prev = ewma_batch_seconds_.load(std::memory_order_relaxed);
    double next;
    do {
        next = prev == 0.0 ? batch_seconds
                           : 0.8 * prev + 0.2 * batch_seconds;
    } while (!ewma_batch_seconds_.compare_exchange_weak(
        prev, next, std::memory_order_relaxed));
    for (size_t i = 0; i < batch.size(); i++) {
        Response response;
        response.id = batch[i].request.id;
        response.score =
            1.0f / (1.0f + std::exp(-logits[i]));
        response.snapshot_version = version;
        response.queue_seconds =
            std::chrono::duration<double>(dispatched - batch[i].enqueue)
                .count();
        response.total_seconds =
            std::chrono::duration<double>(now - batch[i].enqueue).count();
        metrics.GetHistogram("neo.serve.request_seconds")
            .Observe(response.total_seconds);
        batch[i].promise.set_value(std::move(response));
    }
    metrics.GetCounter("neo.serve.batches").Add();
    metrics.GetHistogram("neo.serve.batch_seconds").Observe(batch_seconds);
    metrics.GetHistogram("neo.serve.batch_size")
        .Observe(static_cast<double>(batch.size()));

    // Per-version gauges for the scrape plane: a router watching the
    // exposition can see each model version's throughput and tails and
    // decide when a freshly-published version has warmed up. Only the
    // rank-0 loop thread runs here, so version_stats_ needs no lock.
    VersionStats* stats = nullptr;
    for (auto& vs : version_stats_) {
        if (vs.version == version) {
            stats = &vs;
            break;
        }
    }
    if (stats == nullptr) {
        version_stats_.push_back(VersionStats{});
        stats = &version_stats_.back();
        stats->version = version;
        stats->first_completion = now;
        if (version_stats_.size() > kVersionStatsKept) {
            version_stats_.pop_front();
            stats = &version_stats_.back();
        }
    }
    for (size_t i = 0; i < batch.size(); i++) {
        const double latency =
            std::chrono::duration<double>(now - batch[i].enqueue).count();
        if (stats->latencies.size() < kVersionLatencyWindow) {
            stats->latencies.push_back(latency);
        } else {
            stats->latencies[stats->next] = latency;
        }
        stats->next = (stats->next + 1) % kVersionLatencyWindow;
    }
    stats->requests += batch.size();
    const std::string prefix =
        "neo.serve.v" + std::to_string(version) + ".";
    const double elapsed =
        std::chrono::duration<double>(now - stats->first_completion)
            .count();
    metrics.GetGauge(prefix + "qps")
        .Set(elapsed > 0.0 ? static_cast<double>(stats->requests) / elapsed
                           : static_cast<double>(stats->requests));
    metrics.GetGauge(prefix + "p50_seconds")
        .Set(Percentile(stats->latencies, 50.0));
    metrics.GetGauge(prefix + "p99_seconds")
        .Set(Percentile(stats->latencies, 99.0));
}

void
Server::CompleteOne(Pending& pending, ResponseStatus status)
{
    Response response;
    response.id = pending.request.id;
    response.status = status;
    response.total_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      pending.enqueue)
            .count();
    obs::MetricsRegistry::Get()
        .GetCounter(std::string("neo.serve.completed_") +
                    ResponseStatusName(status))
        .Add();
    pending.promise.set_value(std::move(response));
}

void
Server::CompleteUnserved(std::vector<Pending>& batch,
                         ResponseStatus status)
{
    for (auto& pending : batch) {
        CompleteOne(pending, status);
    }
    batch.clear();
}

bool
Server::StageServing(std::vector<Pending>& staged,
                     std::vector<Pending>& serving)
{
    const uint64_t want = staged.front().request.pinned_version;
    auto snapshot = want == 0 ? registry_.Current() : registry_.Get(want);
    if (want != 0 && snapshot == nullptr) {
        // Pinned to a version the registry no longer retains: answer
        // every request carrying that pin, keep the rest staged.
        std::vector<Pending> keep;
        keep.reserve(staged.size());
        for (auto& pending : staged) {
            if (pending.request.pinned_version == want) {
                CompleteOne(pending, ResponseStatus::kVersionUnavailable);
            } else {
                keep.push_back(std::move(pending));
            }
        }
        staged.swap(keep);
        return false;
    }
    if (snapshot == nullptr) {
        return false;  // nothing published yet; keep staged and heartbeat
    }
    std::vector<Pending> keep;
    keep.reserve(staged.size());
    for (auto& pending : staged) {
        if (pending.request.pinned_version == want) {
            serving.push_back(std::move(pending));
        } else {
            keep.push_back(std::move(pending));
        }
    }
    staged.swap(keep);
    serving_snapshot_ = std::move(snapshot);
    return true;
}

bool
Server::TakeWarm()
{
    std::lock_guard<std::mutex> lock(warm_mutex_);
    if (warm_queue_.empty()) {
        return false;
    }
    active_warm_ =
        std::make_unique<WarmRequest>(std::move(warm_queue_.front()));
    warm_queue_.pop_front();
    return true;
}

void
Server::DrainWarm()
{
    std::deque<WarmRequest> pending;
    {
        std::lock_guard<std::mutex> lock(warm_mutex_);
        accepting_warm_ = false;
        pending.swap(warm_queue_);
    }
    if (active_warm_) {
        active_warm_->promise.set_value(false);
        active_warm_.reset();
    }
    for (auto& warm : pending) {
        warm.promise.set_value(false);
    }
}

bool
Server::HandleWorldFailure(int rank, comm::ProcessGroup& pg,
                           const comm::RankFailure& failure,
                           std::vector<Pending>& staged,
                           std::vector<Pending>& serving)
{
    auto& metrics = obs::MetricsRegistry::Get();
    metrics.GetCounter("neo.serve.rank_failures").Add();
    if (failure.transient() && options_.recover_timeout.count() > 0 &&
        pg.Recover(options_.recover_timeout)) {
        // All ranks rendezvoused: the world is re-armed and the retained
        // staged/serving groups redispatch on the next iteration.
        // Recomputing an aborted batch is safe — scores are per-sample
        // deterministic — and each promise is still unset.
        metrics.GetCounter("neo.serve.recoveries").Add();
        if (rank == 0) {
            obs::FlightRecorder::Get().RecordEvent(
                rank, "serve_recovered",
                "replica " + std::to_string(options_.replica_id) +
                    " recovered in place after: " + failure.what());
        }
        return true;
    }

    // Permanent (or unrecoverable) failure: quarantine. Fail fast so a
    // fleet router can replay elsewhere instead of waiting on timeouts.
    failed_.store(true);
    batcher_.Stop();
    if (rank != 0) {
        return false;
    }
    // Rank 0 owns every promise: drain the in-flight dispatch group,
    // the staging buffer, and everything still queued as typed
    // kReplicaFailed responses — retryable by the router, never a
    // broken promise.
    size_t drained = serving.size() + staged.size();
    CompleteUnserved(serving, ResponseStatus::kReplicaFailed);
    CompleteUnserved(staged, ResponseStatus::kReplicaFailed);
    serving_snapshot_.reset();
    std::vector<Pending> rest;
    while (batcher_.NextBatch(rest, std::chrono::milliseconds(0))) {
        drained += rest.size();
        CompleteUnserved(rest, ResponseStatus::kReplicaFailed);
    }
    DrainWarm();
    retryable_drained_.fetch_add(drained);
    metrics.GetGauge("neo.serve.replica_failed").Set(1.0);
    auto& recorder = obs::FlightRecorder::Get();
    const std::string detail =
        "replica " + std::to_string(options_.replica_id) +
        " quarantined: " + failure.what() + " (drained " +
        std::to_string(drained) + " requests as retryable)";
    recorder.RecordEvent(rank, "replica_failed", detail);
    recorder.DumpBundle(rank, detail);
    return false;
}

void
Server::RankLoop(int rank, comm::ProcessGroup& pg)
{
    InferenceEngine engine(options_.engine, pg);
    const size_t world = static_cast<size_t>(pg.Size());
    std::vector<Pending> staged;
    std::vector<Pending> serving;
    std::vector<float> logits;

    for (;;) {
        try {
            float cmd = kCmdNoop;
            std::chrono::steady_clock::time_point dispatched;
            if (rank == 0) {
                if (serving.empty() && staged.empty()) {
                    batcher_.NextBatch(staged, options_.heartbeat);
                }
                if (serving.empty() && !staged.empty()) {
                    StageServing(staged, serving);
                }
                if (!serving.empty() && serving_snapshot_) {
                    cmd = kCmdServe;
                    dispatched = std::chrono::steady_clock::now();
                    slot_.snapshot = serving_snapshot_;
                    slot_.pad = (world - serving.size() % world) % world;
                    Batcher::Merge(serving, slot_.pad, num_dense_,
                                   num_tables_, slot_.dense, slot_.sparse);
                } else if (TakeWarm()) {
                    // Idle collective slot: pre-build the next version's
                    // engine state on every rank (traffic keeps flowing
                    // between warm commands, so no latency cliff).
                    cmd = kCmdWarm;
                    slot_.snapshot = active_warm_->snapshot;
                } else if (batcher_.stopped() && batcher_.size() == 0) {
                    // Stopped with no model to answer with (no snapshot
                    // was ever published, or a pinned group lost its
                    // version): complete stragglers with a typed
                    // kStopped response rather than breaking promises.
                    CompleteUnserved(serving, ResponseStatus::kStopped);
                    CompleteUnserved(staged, ResponseStatus::kStopped);
                    DrainWarm();
                    cmd = kCmdStop;
                }
            }
            pg.Broadcast(&cmd, 1, /*root=*/0);
            if (cmd == kCmdStop) {
                break;
            }
            if (cmd == kCmdNoop) {
                continue;
            }
            if (cmd == kCmdWarm) {
                // The broadcast published slot_.snapshot; the barrier
                // returns slot ownership to rank 0 and is the "all ranks
                // warm" edge the Prewarm caller waits on.
                engine.Prefetch(slot_.snapshot);
                pg.Barrier();
                if (rank == 0) {
                    active_warm_->promise.set_value(true);
                    active_warm_.reset();
                    obs::MetricsRegistry::Get()
                        .GetCounter("neo.serve.prewarms")
                        .Add();
                }
                continue;
            }

            // SERVE: the broadcast published slot_ to every rank; pin
            // the snapshot locally so a concurrent Publish cannot free
            // it mid-batch.
            const auto snapshot = slot_.snapshot;
            const auto batch_start = std::chrono::steady_clock::now();
            {
                NEO_TRACE_SPAN("serve_batch", "step");
                engine.Forward(snapshot, slot_.dense, slot_.sparse,
                               logits);
            }
            // Engine's trailing AllGather: every rank is past its slot_
            // reads, so rank 0 may rewrite the slot next iteration.
            if (rank == 0) {
                const double batch_seconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - batch_start)
                        .count();
                CompleteBatch(serving, logits, dispatched, batch_seconds);
                serving.clear();
                serving_snapshot_.reset();
            }
        } catch (const comm::RankFailure& failure) {
            if (HandleWorldFailure(rank, pg, failure, staged, serving)) {
                continue;
            }
            return;
        }
    }
}

}  // namespace neo::serve
