#include "serve/router.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace neo::serve {

std::chrono::milliseconds
RouterBackoffDelay(const RouterOptions& options, size_t attempt)
{
    if (options.retry_backoff.count() <= 0 || attempt == 0) {
        return std::chrono::milliseconds(0);
    }
    // Saturating doubling: cap the shift so the multiply cannot
    // overflow, then clamp to the configured ceiling.
    const size_t shift = std::min<size_t>(attempt - 1, 20);
    const std::chrono::milliseconds delay{options.retry_backoff.count()
                                          << shift};
    return std::min(delay, options.max_retry_backoff);
}

FleetRouter::FleetRouter(const RouterOptions& options)
    : options_(options),
      rng_state_(options.seed == 0 ? 0x9e3779b97f4a7c15ull : options.seed)
{
    NEO_REQUIRE(options_.max_attempts >= 1,
                "router needs at least one dispatch attempt");
    pump_ = std::thread(&FleetRouter::PumpLoop, this);
    publisher_ = std::thread(&FleetRouter::PublishLoop, this);
}

FleetRouter::~FleetRouter()
{
    Stop();
}

size_t
FleetRouter::AddReplica(std::string name, Server* server,
                        comm::ThreadedWorld* world)
{
    NEO_REQUIRE(server != nullptr, "replica server must not be null");
    std::lock_guard<std::mutex> lock(replicas_mutex_);
    replicas_.push_back(std::make_unique<Replica>(
        std::move(name), server, world, options_.health));
    return replicas_.size() - 1;
}

size_t
FleetRouter::NumReplicas() const
{
    std::lock_guard<std::mutex> lock(replicas_mutex_);
    return replicas_.size();
}

double
FleetRouter::NextUniform()
{
    std::lock_guard<std::mutex> lock(rng_mutex_);
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    return static_cast<double>(rng_state_ >> 11) /
           static_cast<double>(1ull << 53);
}

Ticket
FleetRouter::TryDispatch(const Request& request, size_t* replica_out)
{
    // Candidate replicas and weights under the lock; the Submit calls
    // below run lock-free against AddReplica (replicas are stable once
    // traffic starts).
    std::vector<std::pair<size_t, double>> candidates;
    {
        std::lock_guard<std::mutex> lock(replicas_mutex_);
        for (size_t i = 0; i < replicas_.size(); i++) {
            Replica& replica = *replicas_[i];
            if (replica.server->failed()) {
                continue;
            }
            const ReplicaState state = replica.health.state();
            if (state == ReplicaState::kQuarantined ||
                state == ReplicaState::kDrained) {
                continue;
            }
            candidates.emplace_back(
                i, std::max(replica.health.Weight(), 1e-9));
        }
    }
    Ticket last;
    last.admission = Admission::kShedStopped;
    while (!candidates.empty()) {
        double total = 0.0;
        for (const auto& [idx, weight] : candidates) {
            total += weight;
        }
        double roll = NextUniform() * total;
        size_t pick = candidates.size() - 1;
        for (size_t c = 0; c < candidates.size(); c++) {
            roll -= candidates[c].second;
            if (roll <= 0.0) {
                pick = c;
                break;
            }
        }
        const size_t idx = candidates[pick].first;
        Replica* replica;
        {
            std::lock_guard<std::mutex> lock(replicas_mutex_);
            replica = replicas_[idx].get();
        }
        Ticket ticket = replica->server->Submit(request);
        if (ticket.admission == Admission::kAccepted) {
            replica->health.RecordAdmit();
            *replica_out = idx;
            return ticket;
        }
        // Shed: penalize this replica's weight and fall through to the
        // next-best candidate — one overloaded replica must not gate
        // the fleet.
        replica->health.RecordShed();
        last.admission = ticket.admission;
        candidates.erase(candidates.begin() +
                         static_cast<std::ptrdiff_t>(pick));
    }
    return last;
}

Ticket
FleetRouter::Submit(Request request)
{
    auto& metrics = obs::MetricsRegistry::Get();
    metrics.GetCounter("neo.fleet.requests").Add();
    {
        std::lock_guard<std::mutex> lock(totals_mutex_);
        totals_.submitted++;
    }
    size_t replica = 0;
    Ticket inner = TryDispatch(request, &replica);
    if (inner.admission != Admission::kAccepted) {
        std::lock_guard<std::mutex> lock(totals_mutex_);
        totals_.router_shed++;
        metrics.GetCounter("neo.fleet.router_shed").Add();
        return inner;
    }
    Flight flight;
    flight.request = std::move(request);
    flight.pending = std::move(inner.response);
    flight.replica = replica;
    Ticket ticket;
    ticket.admission = Admission::kAccepted;
    ticket.response = flight.done.get_future();
    {
        std::lock_guard<std::mutex> lock(flights_mutex_);
        flights_.push_back(std::move(flight));
    }
    flights_cv_.notify_all();
    return ticket;
}

void
FleetRouter::QuarantineReplica(size_t replica_idx,
                               const std::string& reason)
{
    Replica* replica;
    {
        std::lock_guard<std::mutex> lock(replicas_mutex_);
        replica = replicas_[replica_idx].get();
    }
    const ReplicaState state = replica->health.state();
    if (state == ReplicaState::kQuarantined ||
        state == ReplicaState::kDrained) {
        return;
    }
    replica->health.MarkFailed();
    {
        std::lock_guard<std::mutex> lock(totals_mutex_);
        totals_.quarantines++;
    }
    obs::MetricsRegistry::Get()
        .GetCounter("neo.fleet.quarantines")
        .Add();
    obs::FlightRecorder::Get().RecordEvent(
        0, "fleet_quarantine",
        "replica " + std::to_string(replica_idx) + " (" + replica->name +
            ") quarantined: " + reason);
    PublishGauges();
}

void
FleetRouter::PumpFlights()
{
    using namespace std::chrono_literals;
    const auto now = std::chrono::steady_clock::now();
    auto& metrics = obs::MetricsRegistry::Get();
    std::lock_guard<std::mutex> lock(flights_mutex_);
    for (auto it = flights_.begin(); it != flights_.end();) {
        Flight& flight = *it;
        if (flight.waiting) {
            if (now < flight.not_before) {
                ++it;
                continue;
            }
            size_t replica = 0;
            Ticket ticket = TryDispatch(flight.request, &replica);
            {
                std::lock_guard<std::mutex> tlock(totals_mutex_);
                totals_.retries++;
            }
            metrics.GetCounter("neo.fleet.retries").Add();
            if (ticket.admission == Admission::kAccepted) {
                flight.pending = std::move(ticket.response);
                flight.replica = replica;
                flight.waiting = false;
                ++it;
                continue;
            }
            // Nobody accepted this round: back off again (saturating)
            // until attempts run out.
            flight.attempts++;
            if (flight.attempts > options_.max_attempts) {
                Response response;
                response.id = flight.request.id;
                response.status = ResponseStatus::kFailed;
                flight.done.set_value(std::move(response));
                std::lock_guard<std::mutex> tlock(totals_mutex_);
                totals_.failed++;
                it = flights_.erase(it);
                continue;
            }
            flight.not_before =
                now + RouterBackoffDelay(options_, flight.attempts - 1);
            ++it;
            continue;
        }
        if (flight.pending.wait_for(0s) != std::future_status::ready) {
            ++it;
            continue;
        }
        Response response = flight.pending.get();
        if (response.status == ResponseStatus::kOk) {
            Replica* replica;
            {
                std::lock_guard<std::mutex> rlock(replicas_mutex_);
                replica = replicas_[flight.replica].get();
            }
            replica->health.RecordLatency(response.total_seconds);
            flight.done.set_value(std::move(response));
            std::lock_guard<std::mutex> tlock(totals_mutex_);
            totals_.completed_ok++;
            it = flights_.erase(it);
            continue;
        }
        if (response.status == ResponseStatus::kReplicaFailed) {
            // The replica's world died with this request on board. The
            // request was never scored (typed drain, not a broken
            // promise), so replaying it verbatim on a surviving replica
            // returns bitwise-identical scores.
            QuarantineReplica(flight.replica,
                              "reported kReplicaFailed for request " +
                                  std::to_string(flight.request.id));
            {
                std::lock_guard<std::mutex> tlock(totals_mutex_);
                totals_.failovers++;
            }
            metrics.GetCounter("neo.fleet.failovers").Add();
            if (flight.attempts >= options_.max_attempts) {
                response.status = ResponseStatus::kFailed;
                flight.done.set_value(std::move(response));
                std::lock_guard<std::mutex> tlock(totals_mutex_);
                totals_.failed++;
                it = flights_.erase(it);
                continue;
            }
            flight.attempts++;
            flight.waiting = true;
            flight.not_before =
                now + RouterBackoffDelay(options_, flight.attempts - 1);
            ++it;
            continue;
        }
        // kStopped / kVersionUnavailable: administrative terminal
        // statuses pass through to the client unchanged.
        flight.done.set_value(std::move(response));
        it = flights_.erase(it);
    }
}

void
FleetRouter::HealthTick()
{
    std::vector<Replica*> replicas;
    {
        std::lock_guard<std::mutex> lock(replicas_mutex_);
        replicas.reserve(replicas_.size());
        for (auto& replica : replicas_) {
            replicas.push_back(replica.get());
        }
    }
    for (size_t i = 0; i < replicas.size(); i++) {
        Replica* replica = replicas[i];
        const ReplicaState state = replica->health.state();
        if (state == ReplicaState::kDrained) {
            continue;
        }
        if (state == ReplicaState::kQuarantined) {
            // Quarantined -> drained once the pump holds no flight
            // still pointed at this replica.
            bool busy = false;
            {
                std::lock_guard<std::mutex> lock(flights_mutex_);
                for (const auto& flight : flights_) {
                    if (!flight.waiting && flight.replica == i) {
                        busy = true;
                        break;
                    }
                }
            }
            if (!busy) {
                replica->health.MarkDrained();
            }
            continue;
        }
        if (replica->server->failed()) {
            // Covers deaths the request path never observes (e.g. an
            // idle heartbeating world missing its barrier deadline).
            QuarantineReplica(i, "server world failed");
            continue;
        }
        if (replica->world != nullptr) {
            replica->health.NoteStragglerVerdict(
                replica->world->AnalyzeStragglers().flagged);
        }
    }
    PublishGauges();
}

void
FleetRouter::PublishGauges()
{
    auto& metrics = obs::MetricsRegistry::Get();
    size_t healthy = 0;
    int suspect = -1;
    std::lock_guard<std::mutex> lock(replicas_mutex_);
    for (size_t i = 0; i < replicas_.size(); i++) {
        Replica& replica = *replicas_[i];
        const ReplicaState state = replica.health.state();
        const bool dispatchable = state == ReplicaState::kHealthy ||
                                  state == ReplicaState::kSuspect;
        if (dispatchable) {
            healthy++;
        }
        if (state == ReplicaState::kSuspect && suspect < 0) {
            suspect = static_cast<int>(i);
        }
        const std::string prefix =
            "neo.fleet.replica" + std::to_string(i) + ".";
        metrics.GetGauge(prefix + "healthy")
            .Set(dispatchable ? 1.0 : 0.0);
        metrics.GetGauge(prefix + "weight").Set(replica.health.Weight());
        metrics.GetGauge(prefix + "state")
            .Set(static_cast<double>(static_cast<int>(state)));
        metrics.GetGauge(prefix + "latency_ewma_seconds")
            .Set(replica.health.LatencyEwma());
        metrics.GetGauge(prefix + "shed_rate")
            .Set(replica.health.ShedRate());
    }
    metrics.GetGauge("neo.fleet.replica_healthy")
        .Set(static_cast<double>(healthy));
    metrics.GetGauge("neo.fleet.has_suspect")
        .Set(suspect >= 0 ? 1.0 : 0.0);
    metrics.GetGauge("neo.fleet.suspect_replica")
        .Set(static_cast<double>(suspect));
}

void
FleetRouter::PumpLoop()
{
    using namespace std::chrono_literals;
    last_health_tick_ = std::chrono::steady_clock::now();
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(flights_mutex_);
            if (stop_.load() && flights_.empty()) {
                break;
            }
            // Futures have no completion callback; poll at a cadence
            // well under any serve-batch latency.
            flights_cv_.wait_for(lock, 200us);
        }
        PumpFlights();
        const auto now = std::chrono::steady_clock::now();
        if (now - last_health_tick_ >= options_.health_period) {
            last_health_tick_ = now;
            HealthTick();
        }
    }
    HealthTick();
}

void
FleetRouter::PublishLoop()
{
    for (;;) {
        std::shared_ptr<const ModelSnapshot> snapshot;
        {
            std::unique_lock<std::mutex> lock(publish_mutex_);
            publish_cv_.wait(lock, [&] {
                return stop_.load() || !publish_queue_.empty();
            });
            if (publish_queue_.empty()) {
                return;  // stopping and drained
            }
            snapshot = std::move(publish_queue_.front());
            publish_queue_.pop_front();
        }
        Publish(std::move(snapshot));
    }
}

size_t
FleetRouter::Publish(std::shared_ptr<const ModelSnapshot> snapshot)
{
    NEO_REQUIRE(snapshot != nullptr, "cannot publish a null snapshot");
    std::vector<Replica*> replicas;
    {
        std::lock_guard<std::mutex> lock(replicas_mutex_);
        replicas.reserve(replicas_.size());
        for (auto& replica : replicas_) {
            replicas.push_back(replica.get());
        }
    }
    size_t flipped = 0;
    for (Replica* replica : replicas) {
        if (replica->server->failed()) {
            continue;
        }
        const ReplicaState state = replica->health.state();
        if (state == ReplicaState::kQuarantined ||
            state == ReplicaState::kDrained) {
            continue;
        }
        if (replica->server->CurrentVersion() >= snapshot->version) {
            flipped++;  // already there (idempotent re-publish)
            continue;
        }
        // Warm first: every rank pre-builds the version's engine state
        // on idle collective slots while live traffic keeps flowing on
        // the old version; only then flip traffic atomically.
        if (!replica->server->Prewarm(snapshot)) {
            continue;  // replica stopped/died mid-warm-up; skip it
        }
        replica->server->Publish(snapshot);
        flipped++;
    }
    obs::MetricsRegistry::Get().GetCounter("neo.fleet.publishes").Add();
    return flipped;
}

void
FleetRouter::PublishAsync(std::shared_ptr<const ModelSnapshot> snapshot)
{
    NEO_REQUIRE(snapshot != nullptr, "cannot publish a null snapshot");
    {
        std::lock_guard<std::mutex> lock(publish_mutex_);
        publish_queue_.push_back(std::move(snapshot));
    }
    publish_cv_.notify_all();
}

uint64_t
FleetRouter::NextVersion() const
{
    std::lock_guard<std::mutex> lock(replicas_mutex_);
    uint64_t version = 0;
    for (const auto& replica : replicas_) {
        version = std::max(version, replica->server->CurrentVersion());
    }
    return version + 1;
}

uint64_t
FleetRouter::PublishFromStore(const core::CheckpointStore& store,
                              const core::DlrmConfig& config,
                              const sharding::ShardingPlan& plan)
{
    const uint64_t version = NextVersion();
    Publish(SnapshotFromStore(store, config, plan, version));
    return version;
}

void
FleetRouter::Stop()
{
    stop_.store(true);
    flights_cv_.notify_all();
    publish_cv_.notify_all();
    if (pump_.joinable()) {
        pump_.join();
    }
    if (publisher_.joinable()) {
        publisher_.join();
    }
}

ReplicaState
FleetRouter::StateOf(size_t replica) const
{
    std::lock_guard<std::mutex> lock(replicas_mutex_);
    return replicas_.at(replica)->health.state();
}

double
FleetRouter::WeightOf(size_t replica) const
{
    std::lock_guard<std::mutex> lock(replicas_mutex_);
    return replicas_.at(replica)->health.Weight();
}

size_t
FleetRouter::HealthyCount() const
{
    std::lock_guard<std::mutex> lock(replicas_mutex_);
    size_t healthy = 0;
    for (const auto& replica : replicas_) {
        const ReplicaState state = replica->health.state();
        if (state == ReplicaState::kHealthy ||
            state == ReplicaState::kSuspect) {
            healthy++;
        }
    }
    return healthy;
}

FleetRouter::Totals
FleetRouter::totals() const
{
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return totals_;
}

ReplicaHost::ReplicaHost(size_t num_dense, size_t num_tables,
                         int world_size,
                         const ServerOptions& server_options,
                         comm::ThreadedWorld::Options world_options)
    : detector_(std::make_unique<obs::StragglerDetector>())
{
    if (world_options.detector == nullptr) {
        world_options.detector = detector_.get();
    }
    world_ =
        std::make_unique<comm::ThreadedWorld>(world_size, world_options);
    server_ =
        std::make_unique<Server>(num_dense, num_tables, server_options);
    threads_.reserve(static_cast<size_t>(world_size));
    for (int r = 0; r < world_size; r++) {
        threads_.emplace_back([this, r] {
            try {
                server_->RankLoop(r, world_->GetGroup(r));
            } catch (const std::exception& e) {
                // RankFailure is handled inside RankLoop; anything else
                // escaping poisons the world so peers fail fast instead
                // of hanging in their next collective.
                world_->Abort(r,
                              std::string("serve rank loop: ") + e.what());
            }
        });
    }
}

ReplicaHost::~ReplicaHost()
{
    Stop();
}

void
ReplicaHost::Stop()
{
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (stopped_) {
            return;
        }
        stopped_ = true;
    }
    server_->Stop();
    for (auto& thread : threads_) {
        if (thread.joinable()) {
            thread.join();
        }
    }
}

}  // namespace neo::serve
