/**
 * @file
 * Immutable model snapshots for online serving (the publish half of the
 * train→publish→serve loop, Sec. 4.1.3). A snapshot freezes everything a
 * forward pass needs — dense MLP weights, per-shard embedding tables
 * under a serving plan, replicated DP tables — so serving never races
 * the trainer's updates. Snapshots are published through a versioned
 * registry with RCU-style shared_ptr hot-swap: readers grab the current
 * snapshot at batch dispatch and keep serving it even if a newer version
 * lands mid-batch; the old version is reclaimed when its last in-flight
 * batch drops the reference.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/checkpoint.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "ops/embedding_table.h"
#include "sharding/planner.h"

namespace neo::serve {

/**
 * One frozen model version. Holds the COMPLETE model (every shard of
 * the serving plan, not just one rank's), shared read-only across rank
 * threads; each rank's engine touches only the shards the plan assigned
 * it. EmbeddingTable row reads are const, so concurrent lookups from
 * all ranks are race-free by construction.
 */
struct ModelSnapshot {
    /** Registry version (strictly increasing across publishes). */
    uint64_t version = 0;
    /** Checkpoint epoch (or step counter) this snapshot was cut from. */
    uint64_t source_epoch = 0;

    core::DlrmConfig config;
    /** Serving plan the shards below are laid out under. */
    sharding::ShardingPlan plan;

    /** One frozen non-DP shard. */
    struct ShardData {
        sharding::Shard meta;
        ops::EmbeddingTable table;
        ShardData(const sharding::Shard& m, ops::EmbeddingTable t)
            : meta(m), table(std::move(t)) {}
    };
    /** All non-DP shards of the plan, canonical (ShardLess) order. */
    std::vector<ShardData> shards;

    /** One replicated data-parallel table. */
    struct DpData {
        int table = -1;
        ops::EmbeddingTable replica;
        DpData(int idx, ops::EmbeddingTable t)
            : table(idx), replica(std::move(t)) {}
    };
    std::vector<DpData> dp_tables;

    /** Dense state: bottom MLP then top MLP (Mlp::Save format); trailing
     *  bytes (e.g. a checkpoint's dense-optimizer state) are ignored. */
    std::vector<uint8_t> dense_blob;
};

/**
 * Build a snapshot from a published checkpoint store (non-collective —
 * any single thread can call, no process group needed). Assembles the
 * store's per-rank streams into logical tables, then slices them onto
 * `serving_plan`, which may differ entirely from the training sharding.
 */
std::shared_ptr<const ModelSnapshot> SnapshotFromStore(
    const core::CheckpointStore& store, const core::DlrmConfig& config,
    const sharding::ShardingPlan& serving_plan, uint64_t version);

/**
 * Cut a snapshot from a live trainer without going through a checkpoint
 * (collective on the trainer's process group; every rank must call).
 * Each rank ships its shards to rank 0, which assembles logical tables
 * and slices them onto `serving_plan`. Returns the snapshot on rank 0
 * and nullptr on the other ranks.
 */
std::shared_ptr<const ModelSnapshot> SnapshotFromTrainer(
    core::DistributedDlrm& trainer,
    const sharding::ShardingPlan& serving_plan, uint64_t version,
    uint64_t source_epoch = 0);

/**
 * Versioned publication point between trainer and server. Publish
 * installs a new current snapshot (versions must strictly increase);
 * Current hands out a shared_ptr, so a reader's view survives any
 * number of subsequent swaps. The registry additionally retains a
 * bounded history of displaced versions so per-request version pinning
 * (A/B splits) can keep serving an older model while the fleet rolls
 * forward. Thread-safe.
 */
class SnapshotRegistry
{
  public:
    /** Install `snapshot` as current; throws unless its version is
     *  strictly greater than the current one. */
    void Publish(std::shared_ptr<const ModelSnapshot> snapshot);

    /** Current snapshot (nullptr before the first publish). */
    std::shared_ptr<const ModelSnapshot> Current() const;

    /** Retained snapshot with exactly `version` (current or history);
     *  nullptr when that version was never published or aged out. */
    std::shared_ptr<const ModelSnapshot> Get(uint64_t version) const;

    /** Version of the current snapshot (0 before the first publish). */
    uint64_t CurrentVersion() const;

    /** Number of successful publishes. */
    uint64_t SwapCount() const;

    /** Versions retained for Get() (current included); trimming applies
     *  on the next Publish. Minimum 1 (the current version). */
    void SetHistoryDepth(size_t depth);

  private:
    mutable std::mutex mutex_;
    /** Retained versions, oldest first; back() is current. */
    std::deque<std::shared_ptr<const ModelSnapshot>> history_;
    size_t history_depth_ = 4;
    uint64_t swaps_ = 0;
};

}  // namespace neo::serve
