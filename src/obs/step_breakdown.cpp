#include "obs/step_breakdown.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/table_printer.h"

namespace neo::obs {

namespace {

/**
 * Bucket a span category resolves to, or nullptr for transparent
 * categories (gemm, par, step, unknown) that roll up to their ancestor.
 */
double*
BucketFor(BreakdownCategories& c, const char* cat)
{
    if (cat == nullptr) {
        return nullptr;
    }
    if (std::strcmp(cat, "data") == 0) {
        return &c.data;
    }
    if (std::strcmp(cat, "emb_fwd") == 0) {
        return &c.emb_fwd;
    }
    if (std::strcmp(cat, "emb_bwd") == 0) {
        return &c.emb_bwd;
    }
    if (std::strcmp(cat, "mlp_fwd") == 0) {
        return &c.mlp_fwd;
    }
    if (std::strcmp(cat, "mlp_bwd") == 0) {
        return &c.mlp_bwd;
    }
    if (std::strcmp(cat, "a2a") == 0) {
        return &c.alltoall;
    }
    if (std::strcmp(cat, "allreduce") == 0) {
        return &c.allreduce;
    }
    if (std::strcmp(cat, "comm") == 0 || std::strcmp(cat, "barrier") == 0) {
        return &c.comm_other;
    }
    if (std::strcmp(cat, "opt") == 0) {
        return &c.optimizer;
    }
    return nullptr;
}

}  // namespace

double
BreakdownCategories::Total() const
{
    return data + emb_fwd + emb_bwd + mlp_fwd + mlp_bwd + alltoall +
           allreduce + comm_other + optimizer + other;
}

StepBreakdown
StepBreakdown::FromSpans(const std::vector<Span>& spans, int rank,
                         const char* step_name)
{
    StepBreakdown out;
    double step_total_ns = 0.0;

    // Re-nest each of the rank's threads separately; spans never cross
    // threads, and the rank thread's step span bounds the wall clock.
    std::map<uint32_t, std::vector<Span>> by_tid;
    for (const Span& span : spans) {
        if (span.rank == rank) {
            by_tid[span.tid].push_back(span);
        }
    }

    // For the overlap_saved term: the step spans' time intervals, and
    // the root spans of threads that recorded no step span (background
    // lanes — overlapped prepare, async checkpoint flush).
    std::vector<std::pair<int64_t, int64_t>> step_intervals;
    std::vector<std::pair<int64_t, int64_t>> background_roots;

    for (auto& [tid, local] : by_tid) {
        (void)tid;
        // Parents sort before children: earlier start first, and at
        // equal start the shallower span first.
        std::sort(local.begin(), local.end(),
                  [](const Span& a, const Span& b) {
                      if (a.start_ns != b.start_ns) {
                          return a.start_ns < b.start_ns;
                      }
                      return a.depth < b.depth;
                  });

        const size_t n = local.size();
        std::vector<int> parent(n, -1);
        std::vector<int64_t> child_ns(n, 0);
        std::vector<char> in_step(n, 0);
        std::vector<size_t> stack;
        std::vector<std::pair<int64_t, int64_t>> tid_roots;
        bool tid_has_step = false;
        for (size_t i = 0; i < n; i++) {
            const Span& s = local[i];
            while (!stack.empty()) {
                const Span& top = local[stack.back()];
                if (top.depth >= s.depth ||
                    top.start_ns + top.dur_ns <= s.start_ns) {
                    stack.pop_back();
                } else {
                    break;
                }
            }
            if (!stack.empty()) {
                parent[i] = static_cast<int>(stack.back());
                child_ns[stack.back()] += s.dur_ns;
            } else {
                tid_roots.emplace_back(s.start_ns, s.start_ns + s.dur_ns);
            }
            const bool is_step = std::strcmp(s.name, step_name) == 0;
            in_step[i] =
                is_step || (parent[i] >= 0 && in_step[parent[i]] != 0);
            if (is_step) {
                tid_has_step = true;
                out.steps++;
                step_total_ns += static_cast<double>(s.dur_ns);
                step_intervals.emplace_back(s.start_ns,
                                            s.start_ns + s.dur_ns);
            }
            stack.push_back(i);
        }
        // A thread with no step span of its own is a background lane;
        // the part of its root spans that coincides with the step spans
        // is work the overlap took off the critical path.
        if (!tid_has_step) {
            background_roots.insert(background_roots.end(),
                                    tid_roots.begin(), tid_roots.end());
        }

        for (size_t i = 0; i < n; i++) {
            if (in_step[i] == 0) {
                continue;
            }
            const int64_t exclusive_ns =
                std::max<int64_t>(local[i].dur_ns - child_ns[i], 0);
            if (exclusive_ns == 0) {
                continue;
            }
            // Charge the nearest bucketed category on the ancestor chain;
            // a fully transparent chain is uninstrumented step time.
            double* bucket = nullptr;
            for (int j = static_cast<int>(i); j >= 0; j = parent[j]) {
                bucket = BucketFor(out.categories, local[j].cat);
                if (bucket != nullptr) {
                    break;
                }
            }
            if (bucket == nullptr) {
                bucket = &out.categories.other;
            }
            *bucket += static_cast<double>(exclusive_ns) * 1e-9;
        }
    }

    // overlap_saved: background-lane root time that coincides with the
    // (merged) step intervals. Roots within one lane are sequential, so
    // summing each root's intersection with the merged step windows
    // never double-counts lane time; concurrent lanes sum, because each
    // would have serialized onto the critical path separately.
    if (!background_roots.empty() && !step_intervals.empty()) {
        std::sort(step_intervals.begin(), step_intervals.end());
        std::vector<std::pair<int64_t, int64_t>> merged;
        for (const auto& interval : step_intervals) {
            if (!merged.empty() && interval.first <= merged.back().second) {
                merged.back().second =
                    std::max(merged.back().second, interval.second);
            } else {
                merged.push_back(interval);
            }
        }
        int64_t overlap_ns = 0;
        for (const auto& [begin, end] : background_roots) {
            for (const auto& [mb, me] : merged) {
                const int64_t lo = std::max(begin, mb);
                const int64_t hi = std::min(end, me);
                if (hi > lo) {
                    overlap_ns += hi - lo;
                }
            }
        }
        out.overlap_saved = static_cast<double>(overlap_ns) * 1e-9;
    }

    if (out.steps > 0) {
        const double inv = 1.0 / static_cast<double>(out.steps);
        out.overlap_saved *= inv;
        out.categories.data *= inv;
        out.categories.emb_fwd *= inv;
        out.categories.emb_bwd *= inv;
        out.categories.mlp_fwd *= inv;
        out.categories.mlp_bwd *= inv;
        out.categories.alltoall *= inv;
        out.categories.allreduce *= inv;
        out.categories.comm_other *= inv;
        out.categories.optimizer *= inv;
        out.categories.other *= inv;
        out.step_seconds = step_total_ns * 1e-9 * inv;
    }
    return out;
}

StepBreakdown
StepBreakdown::FromModel(const sim::IterationBreakdown& model)
{
    StepBreakdown out;
    out.categories.data = model.htod;
    out.categories.emb_fwd = model.emb_lookup;
    out.categories.emb_bwd = model.emb_update;
    out.categories.mlp_fwd =
        model.bot_mlp_fwd + model.interaction_fwd + model.top_mlp_fwd;
    out.categories.mlp_bwd =
        model.top_mlp_bwd + model.interaction_bwd + model.bot_mlp_bwd;
    out.categories.alltoall =
        model.input_a2a + model.pooled_a2a_fwd + model.grad_a2a_bwd;
    out.categories.allreduce = model.allreduce;
    // Checkpointing is not one of the Fig. 12 compute/comm buckets; the
    // model's (exposed) checkpoint cost lands in `other` alongside the
    // overhead term, mirroring how measured checkpoint spans (category
    // "recovery", transparent) attribute.
    out.categories.other = model.overhead + model.checkpoint;
    out.overlap_saved = model.overlap_saved;
    out.step_seconds = model.total;
    out.steps = 1;
    return out;
}

double
StepBreakdown::Coverage() const
{
    return step_seconds > 0.0 ? categories.Total() / step_seconds : 0.0;
}

std::vector<BreakdownRow>
StepBreakdown::Rows() const
{
    return {
        {"data", categories.data},
        {"emb_fwd", categories.emb_fwd},
        {"emb_bwd", categories.emb_bwd},
        {"mlp_fwd", categories.mlp_fwd},
        {"mlp_bwd", categories.mlp_bwd},
        {"alltoall", categories.alltoall},
        {"allreduce", categories.allreduce},
        {"comm_other", categories.comm_other},
        {"optimizer", categories.optimizer},
        {"other", categories.other},
    };
}

std::string
StepBreakdown::ToTable() const
{
    TablePrinter table({"category", "ms/step", "% of step"});
    for (const BreakdownRow& row : Rows()) {
        table.Row()
            .Cell(row.name)
            .CellF(row.seconds * 1e3, "%.3f")
            .CellF(step_seconds > 0.0 ? 100.0 * row.seconds / step_seconds
                                      : 0.0,
                   "%.1f");
    }
    table.Row()
        .Cell("total")
        .CellF(categories.Total() * 1e3, "%.3f")
        .CellF(Coverage() * 100.0, "%.1f");
    table.Row()
        .Cell("step wall-clock")
        .CellF(step_seconds * 1e3, "%.3f")
        .Cell("100.0");
    table.Row()
        .Cell("exposed comm")
        .CellF(categories.ExposedComm() * 1e3, "%.3f")
        .CellF(step_seconds > 0.0
                   ? 100.0 * categories.ExposedComm() / step_seconds
                   : 0.0,
               "%.1f");
    table.Row()
        .Cell("overlap saved")
        .CellF(overlap_saved * 1e3, "%.3f")
        .CellF(step_seconds > 0.0 ? 100.0 * overlap_saved / step_seconds
                                  : 0.0,
               "%.1f");
    return table.ToString();
}

std::string
StepBreakdown::DiffTable(const StepBreakdown& measured,
                         const StepBreakdown& modeled)
{
    TablePrinter table(
        {"category", "measured ms", "modeled ms", "diff ms", "meas/model"});
    const std::vector<BreakdownRow> lhs = measured.Rows();
    const std::vector<BreakdownRow> rhs = modeled.Rows();
    for (size_t i = 0; i < lhs.size(); i++) {
        const double m = lhs[i].seconds * 1e3;
        const double p = rhs[i].seconds * 1e3;
        table.Row().Cell(lhs[i].name).CellF(m, "%.3f").CellF(p, "%.3f").CellF(
            m - p, "%+.3f");
        if (p > 0.0) {
            table.CellF(m / p, "%.2f");
        } else {
            table.Cell("-");
        }
    }
    const double m_overlap = measured.overlap_saved * 1e3;
    const double p_overlap = modeled.overlap_saved * 1e3;
    table.Row()
        .Cell("overlap saved")
        .CellF(m_overlap, "%.3f")
        .CellF(p_overlap, "%.3f")
        .CellF(m_overlap - p_overlap, "%+.3f");
    if (p_overlap > 0.0) {
        table.CellF(m_overlap / p_overlap, "%.2f");
    } else {
        table.Cell("-");
    }
    const double m_total = measured.step_seconds * 1e3;
    const double p_total = modeled.step_seconds * 1e3;
    table.Row()
        .Cell("step total")
        .CellF(m_total, "%.3f")
        .CellF(p_total, "%.3f")
        .CellF(m_total - p_total, "%+.3f");
    if (p_total > 0.0) {
        table.CellF(m_total / p_total, "%.2f");
    } else {
        table.Cell("-");
    }
    return table.ToString();
}

}  // namespace neo::obs
