/**
 * @file
 * Aggregates recorded trace spans into the paper's Fig. 12 iteration
 * breakdown categories and diffs the measured numbers against
 * sim::IterationModel predictions — the measured half of the PARAM-style
 * "replay and validate" loop the evaluation methodology is built on.
 *
 * Attribution uses exclusive time: spans are re-nested per thread via
 * their recorded depth, each span's exclusive duration (its own time
 * minus its children's) is charged to the bucket named by its category,
 * and "transparent" categories (gemm, par, step, and anything unknown)
 * roll up to the nearest bucketed ancestor — so the buckets of one rank
 * sum to exactly that rank's step wall-clock by construction, with the
 * uninstrumented remainder showing up as `other`.
 */
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/iteration_model.h"

namespace neo::obs {

/** Per-step seconds in each Fig. 12 bucket. */
struct BreakdownCategories {
    double data = 0.0;       ///< input pipeline / batch wait ("data")
    double emb_fwd = 0.0;    ///< embedding lookup + pooling ("emb_fwd")
    double emb_bwd = 0.0;    ///< embedding gradient + update ("emb_bwd")
    double mlp_fwd = 0.0;    ///< dense forward incl. interaction ("mlp_fwd")
    double mlp_bwd = 0.0;    ///< dense backward ("mlp_bwd")
    double alltoall = 0.0;   ///< input/pooled/grad AllToAll ("a2a")
    double allreduce = 0.0;  ///< MLP gradient AllReduce ("allreduce")
    double comm_other = 0.0; ///< other collectives, barriers ("comm","barrier")
    double optimizer = 0.0;  ///< dense optimizer apply ("opt")
    double other = 0.0;      ///< uninstrumented remainder of the step

    double Total() const;

    /** Communication buckets only (the paper's "exposed comm"). */
    double ExposedComm() const { return alltoall + allreduce + comm_other; }
};

/** One (category name, seconds) table row; see StepBreakdown::Rows(). */
struct BreakdownRow {
    const char* name;
    double seconds;
};

/**
 * A per-step breakdown for one rank: measured (FromSpans) or predicted
 * (FromModel). All category values are per-step averages in seconds.
 */
class StepBreakdown
{
  public:
    BreakdownCategories categories;

    /** Average wall-clock of one step span (measured) / model total. */
    double step_seconds = 0.0;

    /** Number of step instances aggregated (1 for a model prediction). */
    int steps = 0;

    /**
     * Per-step seconds of work this rank ran CONCURRENTLY with its step
     * spans on background threads (overlapped input distribution, async
     * checkpoint flushes) — work a sequential schedule would have added
     * to the critical path. Deliberately NOT a category: the exclusive-
     * time buckets still sum to the step wall clock, and overlap_saved
     * reports the extra off-path time separately. Measured as the
     * temporal intersection of background-thread root spans with the
     * rank's step spans; threads that recorded any step span themselves
     * are never counted (their time is already inside the buckets).
     */
    double overlap_saved = 0.0;

    /**
     * Aggregate the spans recorded by `rank`'s threads: every span nested
     * (by time + depth) inside a span named `step_name` is charged to a
     * bucket by exclusive time. Spans of other ranks are ignored.
     */
    static StepBreakdown FromSpans(const std::vector<Span>& spans, int rank,
                                   const char* step_name = "train_step");

    /** Map a sim::IterationModel prediction onto the same buckets. */
    static StepBreakdown FromModel(const sim::IterationBreakdown& model);

    /** Fraction of step wall-clock covered by the buckets (~1 measured). */
    double Coverage() const;

    /** Category rows in display order (zero rows included). */
    std::vector<BreakdownRow> Rows() const;

    /** One-column table: category, ms/step, % of step. */
    std::string ToTable() const;

    /** Side-by-side measured-vs-modeled table with per-bucket diffs. */
    static std::string DiffTable(const StepBreakdown& measured,
                                 const StepBreakdown& modeled);
};

}  // namespace neo::obs
