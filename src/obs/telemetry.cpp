#include "obs/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/logging.h"
#include "common/serialize.h"
#include "obs/trace.h"

namespace neo::obs {

namespace {

void
WriteBreakdown(BinaryWriter& writer, const StepBreakdown& b)
{
    writer.Write<BreakdownCategories>(b.categories);
    writer.Write<double>(b.step_seconds);
    writer.Write<int32_t>(b.steps);
    writer.Write<double>(b.overlap_saved);
}

StepBreakdown
ReadBreakdown(BinaryReader& reader)
{
    StepBreakdown b;
    b.categories = reader.Read<BreakdownCategories>();
    b.step_seconds = reader.Read<double>();
    b.steps = reader.Read<int32_t>();
    b.overlap_saved = reader.Read<double>();
    return b;
}

void
AppendEscaped(std::string& out, const std::string& s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

}  // namespace

// GCC 12 miscomputes object sizes through the inlined vector::insert in
// BinaryWriter::Write here and reports an impossible overflow (the
// "writing 1 or more bytes into a region of size 0" false positive).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif

std::vector<uint8_t>
SerializeRankTelemetry(const RankTelemetry& t)
{
    BinaryWriter writer;
    // Spans dominate the payload; pre-sizing keeps the serialize loop
    // from reallocating per span.
    writer.Reserve(1024 + t.spans.size() * 64);
    writer.Write<uint32_t>(kTelemetryMagic);
    writer.Write<uint32_t>(kTelemetryVersion);
    writer.Write<int32_t>(t.rank);
    writer.Write<int64_t>(t.clock_ns);

    writer.Write<uint64_t>(t.metrics.counters.size());
    for (const auto& [name, value] : t.metrics.counters) {
        writer.WriteString(name);
        writer.Write<uint64_t>(value);
    }
    writer.Write<uint64_t>(t.metrics.gauges.size());
    for (const auto& [name, value] : t.metrics.gauges) {
        writer.WriteString(name);
        writer.Write<double>(value);
    }
    writer.Write<uint64_t>(t.metrics.histograms.size());
    for (const auto& [name, snap] : t.metrics.histograms) {
        writer.WriteString(name);
        writer.Write<Histogram::Snapshot>(snap);
    }

    WriteBreakdown(writer, t.breakdown);

    writer.Write<uint64_t>(t.spans.size());
    for (const HarvestedSpan& span : t.spans) {
        writer.WriteString(span.name);
        writer.WriteString(span.cat);
        writer.Write<int64_t>(span.start_ns);
        writer.Write<int64_t>(span.dur_ns);
        writer.Write<int32_t>(span.rank);
        writer.Write<uint32_t>(span.tid);
        writer.Write<uint16_t>(span.depth);
    }
    return writer.buffer();
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

RankTelemetry
DeserializeRankTelemetry(std::vector<uint8_t> bytes)
{
    BinaryReader reader(std::move(bytes));
    const uint32_t magic = reader.Read<uint32_t>();
    NEO_REQUIRE(magic == kTelemetryMagic,
                "telemetry payload: bad magic ", magic);
    const uint32_t version = reader.Read<uint32_t>();
    NEO_REQUIRE(version == kTelemetryVersion,
                "telemetry payload: unsupported version ", version);

    RankTelemetry t;
    t.rank = reader.Read<int32_t>();
    t.clock_ns = reader.Read<int64_t>();

    const uint64_t n_counters = reader.Read<uint64_t>();
    t.metrics.counters.reserve(n_counters);
    for (uint64_t i = 0; i < n_counters; i++) {
        std::string name = reader.ReadString();
        const uint64_t value = reader.Read<uint64_t>();
        t.metrics.counters.emplace_back(std::move(name), value);
    }
    const uint64_t n_gauges = reader.Read<uint64_t>();
    t.metrics.gauges.reserve(n_gauges);
    for (uint64_t i = 0; i < n_gauges; i++) {
        std::string name = reader.ReadString();
        const double value = reader.Read<double>();
        t.metrics.gauges.emplace_back(std::move(name), value);
    }
    const uint64_t n_histograms = reader.Read<uint64_t>();
    t.metrics.histograms.reserve(n_histograms);
    for (uint64_t i = 0; i < n_histograms; i++) {
        std::string name = reader.ReadString();
        const auto snap = reader.Read<Histogram::Snapshot>();
        t.metrics.histograms.emplace_back(std::move(name), snap);
    }

    t.breakdown = ReadBreakdown(reader);

    const uint64_t n_spans = reader.Read<uint64_t>();
    t.spans.reserve(n_spans);
    for (uint64_t i = 0; i < n_spans; i++) {
        HarvestedSpan span;
        span.name = reader.ReadString();
        span.cat = reader.ReadString();
        span.start_ns = reader.Read<int64_t>();
        span.dur_ns = reader.Read<int64_t>();
        span.rank = reader.Read<int32_t>();
        span.tid = reader.Read<uint32_t>();
        span.depth = reader.Read<uint16_t>();
        t.spans.push_back(std::move(span));
    }
    return t;
}

FleetTelemetry
HarvestTelemetry(comm::ProcessGroup& pg, const HarvestOptions& options)
{
    const int rank = pg.Rank();
    const int size = pg.Size();
    NEO_REQUIRE(options.root >= 0 && options.root < size,
                "harvest root ", options.root, " out of range for world of ",
                size);

    // Line the fleet up, then sample the clock: every rank's sample is
    // taken within one barrier-release of the others, which is what
    // makes root_clock − rank_clock a usable offset.
    pg.Barrier();
    const int64_t clock_ns = NowNs();

    RankTelemetry local;
    local.rank = rank;
    local.clock_ns = clock_ns;
    local.metrics = MetricsRegistry::Get().Export();

    const std::vector<Span> all_spans = Tracer::Get().Collect();
    local.breakdown =
        StepBreakdown::FromSpans(all_spans, rank, options.step_name);

    std::vector<Span> mine;
    mine.reserve(all_spans.size());
    for (const Span& span : all_spans) {
        // Shared-pool (untagged) spans belong to no rank; the root
        // contributes them so the merged timeline still shows them once.
        if (span.rank == rank || (rank == options.root && span.rank < 0)) {
            mine.push_back(span);
        }
    }
    std::stable_sort(mine.begin(), mine.end(),
                     [](const Span& a, const Span& b) {
                         return a.start_ns < b.start_ns;
                     });
    const size_t keep = std::min(options.max_spans, mine.size());
    local.spans.reserve(keep);
    for (size_t i = mine.size() - keep; i < mine.size(); i++) {
        const Span& span = mine[i];
        HarvestedSpan h;
        h.name = span.name != nullptr ? span.name : "";
        h.cat = span.cat != nullptr ? span.cat : "";
        h.start_ns = span.start_ns;
        h.dur_ns = span.dur_ns;
        h.rank = span.rank;
        h.tid = span.tid;
        h.depth = span.depth;
        local.spans.push_back(std::move(h));
    }

    std::vector<std::vector<uint8_t>> send(static_cast<size_t>(size));
    send[static_cast<size_t>(options.root)] = SerializeRankTelemetry(local);
    std::vector<std::vector<uint8_t>> recv;
    pg.AllToAllBytes(send, recv);

    FleetTelemetry fleet;
    if (rank != options.root) {
        return fleet;
    }
    fleet.ranks.resize(static_cast<size_t>(size));
    for (int r = 0; r < size; r++) {
        NEO_REQUIRE(!recv[static_cast<size_t>(r)].empty(),
                    "harvest: rank ", r, " sent no telemetry");
        fleet.ranks[static_cast<size_t>(r)] =
            DeserializeRankTelemetry(std::move(recv[static_cast<size_t>(r)]));
        NEO_REQUIRE(fleet.ranks[static_cast<size_t>(r)].rank == r,
                    "harvest: payload from rank ", r, " claims rank ",
                    fleet.ranks[static_cast<size_t>(r)].rank);
    }
    const int64_t root_clock =
        fleet.ranks[static_cast<size_t>(options.root)].clock_ns;
    for (RankTelemetry& t : fleet.ranks) {
        t.clock_offset_ns = root_clock - t.clock_ns;
    }
    return fleet;
}

std::vector<StepBreakdown>
FleetTelemetry::Breakdowns() const
{
    std::vector<StepBreakdown> out;
    out.reserve(ranks.size());
    for (const RankTelemetry& t : ranks) {
        out.push_back(t.breakdown);
    }
    return out;
}

std::string
FleetTelemetry::MergedChromeJson() const
{
    // Flatten to (aligned span, owning-rank offset) and sort by aligned
    // begin time: a uniform per-rank shift preserves each rank's span
    // nesting, and a time-ordered stream is friendliest to viewers.
    struct Aligned {
        const HarvestedSpan* span;
        int64_t ts_ns;
    };
    std::vector<Aligned> events;
    std::map<int, bool> pids_seen;
    for (const RankTelemetry& t : ranks) {
        for (const HarvestedSpan& span : t.spans) {
            events.push_back(Aligned{&span, span.start_ns + t.clock_offset_ns});
            pids_seen[span.rank] = true;
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Aligned& a, const Aligned& b) {
                         return a.ts_ns < b.ts_ns;
                     });

    std::string out;
    out.reserve(128 + events.size() * 96);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    char buf[160];
    for (const auto& [rank, unused] : pids_seen) {
        (void)unused;
        if (!first) {
            out += ",";
        }
        first = false;
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                      "\"name\":\"process_name\",\"args\":{\"name\":\"",
                      rank + 1);
        out += buf;
        if (rank >= 0) {
            out += "rank " + std::to_string(rank);
        } else {
            out += "shared pool";
        }
        out += "\"}}";
    }
    for (const Aligned& event : events) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += "{\"name\":\"";
        AppendEscaped(out, event.span->name);
        out += "\",\"cat\":\"";
        AppendEscaped(out, event.span->cat);
        std::snprintf(buf, sizeof(buf),
                      "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":%d,\"tid\":%u}",
                      static_cast<double>(event.ts_ns) / 1e3,
                      static_cast<double>(event.span->dur_ns) / 1e3,
                      event.span->rank + 1, event.span->tid);
        out += buf;
    }
    out += "]}";
    return out;
}

bool
FleetTelemetry::WriteMergedChromeJson(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return false;
    }
    const std::string json = MergedChromeJson();
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    return std::fclose(f) == 0 && written == json.size();
}

StragglerVerdict
FleetTelemetry::AnalyzeStragglers() const
{
    return StragglerDetector::Get().AnalyzeBreakdowns(Breakdowns());
}

}  // namespace neo::obs
