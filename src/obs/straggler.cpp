#include "obs/straggler.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace neo::obs {

std::string
StragglerVerdict::Describe() const
{
    if (!flagged) {
        return "";
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "straggler suspect: rank %d (%.3f ms vs median %.3f ms, "
                  "skew %.1fx)",
                  rank, max_seconds * 1e3, median_seconds * 1e3, skew);
    return buf;
}

StragglerDetector&
StragglerDetector::Get()
{
    static StragglerDetector detector;
    return detector;
}

void
StragglerDetector::Configure(const StragglerOptions& options)
{
    std::lock_guard<std::mutex> lock(mutex_);
    options_ = options;
    arrival_ewma_.clear();
    step_ewma_.clear();
}

namespace {

void
UpdateEwma(std::map<int, double>& ewma, int rank, double value, double alpha)
{
    auto it = ewma.find(rank);
    if (it == ewma.end()) {
        ewma.emplace(rank, value);
    } else {
        it->second += alpha * (value - it->second);
    }
}

/**
 * Envelope follower: instant attack, slow (EWMA) release. A straggler's
 * signature is one large lateness per collective with near-zero samples
 * in between — every collective runs several internal barriers and the
 * delayed rank is only late to the first of them (by the time the others
 * release it is back in lockstep). A symmetric EWMA averages those
 * spikes away against the zero samples; the envelope jumps to each spike
 * and decays by `release_alpha` per on-time arrival, so a rank that is
 * late every collective holds a high envelope while a single scheduling
 * hiccup decays back under the noise floor within ~1/release_alpha
 * barriers.
 */
void
UpdateEnvelope(std::map<int, double>& env, int rank, double value,
               double release_alpha)
{
    auto it = env.find(rank);
    if (it == env.end()) {
        env.emplace(rank, value);
    } else if (value >= it->second) {
        it->second = value;
    } else {
        it->second += release_alpha * (value - it->second);
    }
}

}  // namespace

void
StragglerDetector::RecordArrival(int rank, double lateness_seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    UpdateEnvelope(arrival_ewma_, rank, lateness_seconds,
                   options_.release_alpha);
}

void
StragglerDetector::RecordStep(int rank, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    UpdateEwma(step_ewma_, rank, seconds, options_.ewma_alpha);
}

double
StragglerDetector::ArrivalEwma(int rank) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = arrival_ewma_.find(rank);
    return it == arrival_ewma_.end() ? 0.0 : it->second;
}

double
StragglerDetector::StepEwma(int rank) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = step_ewma_.find(rank);
    return it == step_ewma_.end() ? 0.0 : it->second;
}

StragglerVerdict
StragglerDetector::Judge(
    const std::vector<std::pair<int, double>>& signal_by_rank,
    const StragglerOptions& options)
{
    StragglerVerdict verdict;
    if (signal_by_rank.empty()) {
        return verdict;
    }
    std::vector<double> values;
    values.reserve(signal_by_rank.size());
    int max_rank = signal_by_rank.front().first;
    double max_value = signal_by_rank.front().second;
    for (const auto& [rank, value] : signal_by_rank) {
        values.push_back(value);
        if (value > max_value) {
            max_value = value;
            max_rank = rank;
        }
    }
    std::sort(values.begin(), values.end());
    const double median = values[values.size() / 2];

    verdict.max_seconds = max_value;
    verdict.median_seconds = median;
    // Compare against the median or the noise floor, whichever is
    // larger: with an idle fleet the median lateness is ~0 and a raw
    // ratio would flag scheduling jitter.
    const double base = std::max(median, options.noise_floor_seconds);
    verdict.skew = base > 0.0 ? max_value / base : 0.0;
    if (max_value > options.noise_floor_seconds &&
        verdict.skew > options.skew_threshold) {
        verdict.flagged = true;
        verdict.rank = max_rank;
    }
    return verdict;
}

void
StragglerDetector::PublishVerdict(const StragglerVerdict& verdict)
{
    auto& registry = MetricsRegistry::Get();
    registry.GetGauge("neo.obs.straggler_rank")
        .Set(verdict.flagged ? verdict.rank : -1);
    registry.GetGauge("neo.obs.straggler_skew").Set(verdict.skew);
}

StragglerVerdict
StragglerDetector::Analyze()
{
    std::vector<std::pair<int, double>> signal;
    StragglerOptions options;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        options = options_;
        signal.assign(arrival_ewma_.begin(), arrival_ewma_.end());
    }
    StragglerVerdict verdict = Judge(signal, options);
    PublishVerdict(verdict);
    return verdict;
}

StragglerVerdict
StragglerDetector::AnalyzeBreakdowns(
    const std::vector<StepBreakdown>& per_rank)
{
    StragglerOptions options;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        options = options_;
    }
    StragglerVerdict verdict = FromBreakdowns(per_rank, options);
    PublishVerdict(verdict);
    return verdict;
}

StragglerVerdict
StragglerDetector::FromBreakdowns(const std::vector<StepBreakdown>& per_rank,
                                  const StragglerOptions& options)
{
    // Under BSP every rank's step wall-clock matches, so skew lives in
    // *where* the time went: the straggler burns it on real (non-comm)
    // work while fast ranks burn it waiting inside comm buckets.
    std::vector<std::pair<int, double>> signal;
    signal.reserve(per_rank.size());
    for (size_t rank = 0; rank < per_rank.size(); rank++) {
        const StepBreakdown& b = per_rank[rank];
        const double non_comm =
            std::max(0.0, b.step_seconds - b.categories.ExposedComm());
        signal.emplace_back(static_cast<int>(rank), non_comm);
    }
    return Judge(signal, options);
}

std::string
StragglerDetector::DescribeStraggler()
{
    return Analyze().Describe();
}

void
StragglerDetector::Clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    arrival_ewma_.clear();
    step_ewma_.clear();
}

}  // namespace neo::obs
