#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace neo::obs {

void
Histogram::Observe(double x)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stat_.Add(x);
    if (samples_.size() < window_) {
        samples_.push_back(x);
    } else {
        samples_[next_] = x;
    }
    next_ = (next_ + 1) % window_;
}

Histogram::Snapshot
Histogram::GetSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.count = stat_.count();
    if (snap.count == 0) {
        return snap;
    }
    snap.sum = stat_.sum();
    snap.mean = stat_.mean();
    snap.min = stat_.min();
    snap.max = stat_.max();
    snap.stddev = stat_.stddev();
    // One copy + one sort for all four percentiles; Percentile() would
    // copy and sort the window per call, which dominates export cost
    // once the sample ring is full.
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    snap.p50 = PercentileSorted(sorted, 50.0);
    snap.p95 = PercentileSorted(sorted, 95.0);
    snap.p99 = PercentileSorted(sorted, 99.0);
    snap.p999 = PercentileSorted(sorted, 99.9);
    // Once the ring wraps, the percentiles above describe only the most
    // recent window_ observations; surface how much history they miss so
    // exports can mark them approximate instead of silently pretending
    // full coverage.
    snap.samples_dropped = snap.count - samples_.size();
    snap.approximate = snap.samples_dropped > 0;
    return snap;
}

void
Histogram::Reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stat_ = RunningStat();
    samples_.clear();
    next_ = 0;
}

MetricsRegistry&
MetricsRegistry::Get()
{
    static MetricsRegistry registry;
    return registry;
}

Counter&
MetricsRegistry::GetCounter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    NEO_REQUIRE(gauges_.find(name) == gauges_.end() &&
                    histograms_.find(name) == histograms_.end(),
                "metric '", name, "' already registered as another kind");
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(name, std::make_unique<Counter>()).first;
    }
    return *it->second;
}

Gauge&
MetricsRegistry::GetGauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    NEO_REQUIRE(counters_.find(name) == counters_.end() &&
                    histograms_.find(name) == histograms_.end(),
                "metric '", name, "' already registered as another kind");
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram&
MetricsRegistry::GetHistogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    NEO_REQUIRE(counters_.find(name) == counters_.end() &&
                    gauges_.find(name) == gauges_.end(),
                "metric '", name, "' already registered as another kind");
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
    }
    return *it->second;
}

void
MetricsRegistry::Reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, counter] : counters_) {
        counter->Reset();
    }
    for (auto& [name, gauge] : gauges_) {
        gauge->Reset();
    }
    for (auto& [name, histogram] : histograms_) {
        histogram->Reset();
    }
}

namespace {

std::string
JsonNumber(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Mangle an instrument name into a Prometheus-legal metric name. */
std::string
PrometheusName(const std::string& name)
{
    std::string out = name;
    for (char& c : out) {
        const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9') || c == '_' || c == ':';
        if (!legal) {
            c = '_';
        }
    }
    return out;
}

}  // namespace

uint64_t
RegistrySnapshot::CounterValue(const std::string& name) const
{
    for (const auto& [n, v] : counters) {
        if (n == name) {
            return v;
        }
    }
    return 0;
}

double
RegistrySnapshot::GaugeValue(const std::string& name) const
{
    for (const auto& [n, v] : gauges) {
        if (n == name) {
            return v;
        }
    }
    return 0.0;
}

RegistrySnapshot
MetricsRegistry::Export() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    RegistrySnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
        snap.counters.emplace_back(name, counter->value());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
        snap.gauges.emplace_back(name, gauge->value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
        snap.histograms.emplace_back(name, histogram->GetSnapshot());
    }
    return snap;
}

std::string
MetricsRegistry::RenderJson(const RegistrySnapshot& snap)
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
        out += first ? "" : ",";
        first = false;
        out += "\"" + name + "\":" + std::to_string(value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : snap.gauges) {
        out += first ? "" : ",";
        first = false;
        out += "\"" + name + "\":" + JsonNumber(value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, s] : snap.histograms) {
        out += first ? "" : ",";
        first = false;
        out += "\"" + name + "\":{\"count\":" + std::to_string(s.count) +
               ",\"sum\":" + JsonNumber(s.sum) +
               ",\"mean\":" + JsonNumber(s.mean) +
               ",\"min\":" + JsonNumber(s.min) +
               ",\"max\":" + JsonNumber(s.max) +
               ",\"stddev\":" + JsonNumber(s.stddev) +
               ",\"p50\":" + JsonNumber(s.p50) +
               ",\"p95\":" + JsonNumber(s.p95) +
               ",\"p99\":" + JsonNumber(s.p99) +
               ",\"p999\":" + JsonNumber(s.p999) +
               ",\"samples_dropped\":" + std::to_string(s.samples_dropped) +
               ",\"approximate\":" + (s.approximate ? "true" : "false") +
               "}";
    }
    out += "}}";
    return out;
}

std::string
MetricsRegistry::RenderCsv(const RegistrySnapshot& snap)
{
    std::string out = "name,kind,count,value,min,max,p50,p95,p99,p999\n";
    for (const auto& [name, value] : snap.counters) {
        out += name + ",counter,," + std::to_string(value) + ",,,,,,\n";
    }
    for (const auto& [name, value] : snap.gauges) {
        out += name + ",gauge,," + JsonNumber(value) + ",,,,,,\n";
    }
    for (const auto& [name, s] : snap.histograms) {
        out += name + ",histogram," + std::to_string(s.count) + "," +
               JsonNumber(s.mean) + "," + JsonNumber(s.min) + "," +
               JsonNumber(s.max) + "," + JsonNumber(s.p50) + "," +
               JsonNumber(s.p95) + "," + JsonNumber(s.p99) + "," +
               JsonNumber(s.p999) + "\n";
    }
    return out;
}

std::string
MetricsRegistry::RenderPrometheus(const RegistrySnapshot& snap)
{
    std::string out;
    for (const auto& [name, value] : snap.counters) {
        const std::string prom = PrometheusName(name);
        out += "# TYPE " + prom + " counter\n";
        out += prom + " " + std::to_string(value) + "\n";
    }
    for (const auto& [name, value] : snap.gauges) {
        const std::string prom = PrometheusName(name);
        out += "# TYPE " + prom + " gauge\n";
        out += prom + " " + JsonNumber(value) + "\n";
    }
    for (const auto& [name, s] : snap.histograms) {
        const std::string prom = PrometheusName(name);
        out += "# TYPE " + prom + " summary\n";
        out += prom + "{quantile=\"0.5\"} " + JsonNumber(s.p50) + "\n";
        out += prom + "{quantile=\"0.95\"} " + JsonNumber(s.p95) + "\n";
        out += prom + "{quantile=\"0.99\"} " + JsonNumber(s.p99) + "\n";
        out += prom + "{quantile=\"0.999\"} " + JsonNumber(s.p999) + "\n";
        out += prom + "_sum " + JsonNumber(s.sum) + "\n";
        out += prom + "_count " + std::to_string(s.count) + "\n";
        if (s.approximate) {
            out += "# TYPE " + prom + "_samples_dropped gauge\n";
            out += prom + "_samples_dropped " +
                   std::to_string(s.samples_dropped) + "\n";
        }
    }
    return out;
}

std::string
MetricsRegistry::ToJson() const
{
    return RenderJson(Export());
}

std::string
MetricsRegistry::ToCsv() const
{
    return RenderCsv(Export());
}

std::string
MetricsRegistry::ToPrometheus() const
{
    return RenderPrometheus(Export());
}

}  // namespace neo::obs
