#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace neo::obs {

void
Histogram::Observe(double x)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stat_.Add(x);
    if (samples_.size() < window_) {
        samples_.push_back(x);
    } else {
        samples_[next_] = x;
    }
    next_ = (next_ + 1) % window_;
}

Histogram::Snapshot
Histogram::GetSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.count = stat_.count();
    if (snap.count == 0) {
        return snap;
    }
    snap.sum = stat_.sum();
    snap.mean = stat_.mean();
    snap.min = stat_.min();
    snap.max = stat_.max();
    snap.stddev = stat_.stddev();
    snap.p50 = Percentile(samples_, 50.0);
    snap.p95 = Percentile(samples_, 95.0);
    snap.p99 = Percentile(samples_, 99.0);
    return snap;
}

void
Histogram::Reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stat_ = RunningStat();
    samples_.clear();
    next_ = 0;
}

MetricsRegistry&
MetricsRegistry::Get()
{
    static MetricsRegistry registry;
    return registry;
}

Counter&
MetricsRegistry::GetCounter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    NEO_REQUIRE(gauges_.find(name) == gauges_.end() &&
                    histograms_.find(name) == histograms_.end(),
                "metric '", name, "' already registered as another kind");
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(name, std::make_unique<Counter>()).first;
    }
    return *it->second;
}

Gauge&
MetricsRegistry::GetGauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    NEO_REQUIRE(counters_.find(name) == counters_.end() &&
                    histograms_.find(name) == histograms_.end(),
                "metric '", name, "' already registered as another kind");
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram&
MetricsRegistry::GetHistogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    NEO_REQUIRE(counters_.find(name) == counters_.end() &&
                    gauges_.find(name) == gauges_.end(),
                "metric '", name, "' already registered as another kind");
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
    }
    return *it->second;
}

void
MetricsRegistry::Reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, counter] : counters_) {
        counter->Reset();
    }
    for (auto& [name, gauge] : gauges_) {
        gauge->Reset();
    }
    for (auto& [name, histogram] : histograms_) {
        histogram->Reset();
    }
}

namespace {

std::string
JsonNumber(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

}  // namespace

std::string
MetricsRegistry::ToJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, counter] : counters_) {
        out += first ? "" : ",";
        first = false;
        out += "\"" + name + "\":" + std::to_string(counter->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, gauge] : gauges_) {
        out += first ? "" : ",";
        first = false;
        out += "\"" + name + "\":" + JsonNumber(gauge->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, histogram] : histograms_) {
        const Histogram::Snapshot s = histogram->GetSnapshot();
        out += first ? "" : ",";
        first = false;
        out += "\"" + name + "\":{\"count\":" + std::to_string(s.count) +
               ",\"sum\":" + JsonNumber(s.sum) +
               ",\"mean\":" + JsonNumber(s.mean) +
               ",\"min\":" + JsonNumber(s.min) +
               ",\"max\":" + JsonNumber(s.max) +
               ",\"stddev\":" + JsonNumber(s.stddev) +
               ",\"p50\":" + JsonNumber(s.p50) +
               ",\"p95\":" + JsonNumber(s.p95) +
               ",\"p99\":" + JsonNumber(s.p99) + "}";
    }
    out += "}}";
    return out;
}

std::string
MetricsRegistry::ToCsv() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "name,kind,count,value,min,max,p50,p95,p99\n";
    for (const auto& [name, counter] : counters_) {
        out += name + ",counter,," + std::to_string(counter->value()) +
               ",,,,,\n";
    }
    for (const auto& [name, gauge] : gauges_) {
        out += name + ",gauge,," + JsonNumber(gauge->value()) + ",,,,,\n";
    }
    for (const auto& [name, histogram] : histograms_) {
        const Histogram::Snapshot s = histogram->GetSnapshot();
        out += name + ",histogram," + std::to_string(s.count) + "," +
               JsonNumber(s.mean) + "," + JsonNumber(s.min) + "," +
               JsonNumber(s.max) + "," + JsonNumber(s.p50) + "," +
               JsonNumber(s.p95) + "," + JsonNumber(s.p99) + "\n";
    }
    return out;
}

}  // namespace neo::obs
