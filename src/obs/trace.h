/**
 * @file
 * Per-rank, per-thread span tracer (the measurement side of the paper's
 * evaluation): RAII `NEO_TRACE_SPAN("name", "cat")` scopes record
 * steady-clock begin/duration pairs into fixed-capacity lock-free
 * thread-local buffers, tagged with the simulated rank of the recording
 * thread. Collected spans export as Chrome trace-event JSON (loadable in
 * Perfetto / chrome://tracing) and feed obs::StepBreakdown, the
 * measured counterpart of sim::IterationModel's Fig.-12 prediction.
 *
 * Cost model: a disabled span site is one relaxed atomic load and a
 * branch; `-DNEO_TRACE_LEVEL=0` compiles every site out entirely. An
 * enabled span is two steady_clock reads plus one slot write — no locks,
 * no allocation — so tracing a full training step stays well under the
 * 2% overhead budget (bench/micro_obs pins this down).
 *
 * Threading contract: appends are wait-free and strictly thread-local
 * (slot write, then a release store of the slot count). Collect() may
 * run concurrently with appends — it sees a consistent prefix via the
 * acquire load of each buffer's count. Clear() must only run at a
 * quiescent point (no span open anywhere), e.g. between training steps
 * with all ranks parked at a barrier, or after worker threads joined.
 *
 * This header is deliberately self-contained (no neo_common includes):
 * neo_common's own hot paths (ParallelFor) trace through it, so it must
 * sit below everything else in the dependency order.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

/**
 * Compile-time trace level: 0 removes every span site from the binary,
 * 1 (default) keeps phase/op spans, 2 also keeps verbose spans (per-
 * barrier waits inside collectives, ParallelFor drains).
 */
#ifndef NEO_TRACE_LEVEL
#define NEO_TRACE_LEVEL 1
#endif

namespace neo::obs {

/** One closed trace scope. `name`/`cat` must be string literals (or
 *  otherwise outlive the tracer); spans store the pointers only. */
struct Span {
    const char* name = nullptr;
    /** Category, used by StepBreakdown to bucket time (see step_breakdown.h). */
    const char* cat = nullptr;
    /** Begin time, ns on the process-wide steady clock (see NowNs()). */
    int64_t start_ns = 0;
    int64_t dur_ns = 0;
    /** Simulated rank of the recording thread (-1 = untagged, e.g. a
     *  shared-pool worker). */
    int rank = -1;
    /** Tracer-assigned dense thread index. */
    uint32_t tid = 0;
    /** Nesting depth on the recording thread at begin time. */
    uint16_t depth = 0;
};

/** Nanoseconds on the steady clock since the tracer's process epoch. */
int64_t NowNs();

/** Process-wide tracer singleton. */
class Tracer
{
  public:
    static Tracer& Get();

    /**
     * Runtime toggle. Off by default unless the NEO_TRACE environment
     * variable is a positive integer at first use (its value also sets
     * the runtime level: NEO_TRACE=2 enables verbose spans).
     */
    void SetEnabled(bool on);

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Runtime span level gate (1 = normal, 2 = verbose). */
    void SetRuntimeLevel(int level);
    int runtime_level() const;

    /**
     * Tag the calling thread with its simulated rank; subsequent spans
     * recorded by this thread carry it. ThreadedWorld::Run tags each
     * worker thread automatically.
     */
    static void SetThreadRank(int rank);
    static int ThreadRank();

    /**
     * Span capacity of buffers created AFTER this call (each thread's
     * buffer is sized on its first span). Overflowing threads drop spans
     * and count them; default 1<<16 spans/thread, or NEO_TRACE_BUFFER.
     */
    void SetThreadBufferCapacity(size_t spans);

    /** Snapshot every thread's spans (safe during concurrent appends). */
    std::vector<Span> Collect() const;

    /** Spans dropped to full buffers since the last Clear(). */
    uint64_t DroppedSpans() const;

    /** Discard all recorded spans. Quiescent points only (see above). */
    void Clear();

    /**
     * Render collected spans as Chrome trace-event JSON ("X" complete
     * events, ts/dur in microseconds, pid = rank + 1 with pid 0 naming
     * the shared pool). Loadable in Perfetto and chrome://tracing.
     */
    std::string ToChromeJson() const;

    /** Write ToChromeJson() to `path`; returns false on I/O failure. */
    bool WriteChromeJson(const std::string& path) const;

    // ---- internal (used by ScopedSpan) ----

    struct ThreadBuffer;

    /** This thread's buffer, created and registered on first use. */
    ThreadBuffer* BufferForThisThread();

    void RecordClosedSpan(const char* name, const char* cat,
                          int64_t start_ns, int64_t dur_ns, uint16_t depth);

  private:
    Tracer();

    std::atomic<bool> enabled_{false};
    std::atomic<int> runtime_level_{1};
    std::atomic<size_t> buffer_capacity_;

    /** Guards buffer registration only; appends never take it. Buffers
     *  are leaked deliberately: exiting threads may still be draining. */
    mutable std::mutex registry_mutex_;
    std::vector<ThreadBuffer*> buffers_;
};

/** True when span recording is on (fast path for macro sites). */
inline bool
TracingEnabled()
{
    return Tracer::Get().enabled();
}

namespace detail {

/** Per-thread open-span nesting depth. */
uint16_t EnterSpan();
void ExitSpan();

}  // namespace detail

/**
 * RAII trace scope. Prefer the NEO_TRACE_SPAN / NEO_TRACE_SPAN_V macros,
 * which compile out at NEO_TRACE_LEVEL 0 / <2 respectively.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char* name, const char* cat, int min_level = 1)
    {
        Tracer& tracer = Tracer::Get();
        if (!tracer.enabled() || tracer.runtime_level() < min_level) {
            return;
        }
        active_ = true;
        name_ = name;
        cat_ = cat;
        depth_ = detail::EnterSpan();
        start_ns_ = NowNs();
    }

    ~ScopedSpan()
    {
        if (!active_) {
            return;
        }
        const int64_t dur = NowNs() - start_ns_;
        detail::ExitSpan();
        Tracer::Get().RecordClosedSpan(name_, cat_, start_ns_, dur, depth_);
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

  private:
    const char* name_ = nullptr;
    const char* cat_ = nullptr;
    int64_t start_ns_ = 0;
    uint16_t depth_ = 0;
    bool active_ = false;
};

#define NEO_OBS_CONCAT_INNER(a, b) a##b
#define NEO_OBS_CONCAT(a, b) NEO_OBS_CONCAT_INNER(a, b)

#if NEO_TRACE_LEVEL >= 1
/** Trace the enclosing scope. `name`/`cat` must outlive the tracer. */
#define NEO_TRACE_SPAN(name, cat)                                             \
    ::neo::obs::ScopedSpan NEO_OBS_CONCAT(neo_obs_span_, __LINE__)(name, cat)
#else
#define NEO_TRACE_SPAN(name, cat) static_cast<void>(0)
#endif

#if NEO_TRACE_LEVEL >= 2
/** Verbose span: compiled at level >= 2, recorded at runtime level >= 2. */
#define NEO_TRACE_SPAN_V(name, cat)                                           \
    ::neo::obs::ScopedSpan NEO_OBS_CONCAT(neo_obs_vspan_, __LINE__)(name,     \
                                                                    cat, 2)
#else
#define NEO_TRACE_SPAN_V(name, cat) static_cast<void>(0)
#endif

}  // namespace neo::obs
