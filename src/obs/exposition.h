/**
 * @file
 * Live metrics exposition: a background thread that periodically renders
 * the MetricsRegistry to Prometheus text format (plus a JSON twin) and
 * atomically replaces `<dir>/<basename>.prom` / `.json`, so an external
 * scraper — or the replica router the ROADMAP points at — can watch a
 * training or serving process without linking against it. Files are
 * written tmp-then-rename, so a reader never sees a torn snapshot.
 *
 * The writer is inert unless a directory is configured (options or
 * NEO_TELEMETRY_DIR): Start() without one is a no-op and returns false,
 * which is how unit tests and benches stay file-free by default.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

namespace neo::obs {

/** Periodic Prometheus/JSON metrics snapshot writer. */
class SnapshotWriter
{
  public:
    struct Options {
        /** Output directory; "" falls back to NEO_TELEMETRY_DIR. */
        std::string directory;
        /** Rewrite period. */
        std::chrono::milliseconds period{1000};
        /** Output stem: writes <basename>.prom and <basename>.json. */
        std::string basename = "metrics";
    };

    SnapshotWriter() = default;
    ~SnapshotWriter();

    SnapshotWriter(const SnapshotWriter&) = delete;
    SnapshotWriter& operator=(const SnapshotWriter&) = delete;

    /**
     * Start the writer thread. Returns false (and stays stopped) when no
     * directory is configured or the writer is already running. Writes
     * one snapshot immediately, then every `period`.
     */
    bool Start(const Options& options);

    /** Stop and join; writes one final snapshot. Safe when not running. */
    void Stop();

    bool running() const { return running_.load(std::memory_order_acquire); }

    /**
     * Render the registry once into `<dir>/<basename>.prom` and
     * `<basename>.json` (tmp-then-rename). Returns the .prom path, or ""
     * on failure. Both files render from ONE registry snapshot, so they
     * are mutually consistent.
     */
    static std::string WriteOnce(const std::string& dir,
                                 const std::string& basename = "metrics");

  private:
    void Loop(Options options);

    std::atomic<bool> running_{false};
    bool stop_requested_ = false;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::thread thread_;
};

}  // namespace neo::obs
