#include "obs/flight_recorder.h"

#include <cstdio>
#include <cstdlib>

#include "obs/trace.h"

namespace neo::obs {

namespace {

/** Minimal JSON string escaper (quotes, backslashes, control chars). */
std::string
JsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

}  // namespace

FlightRecorder&
FlightRecorder::Get()
{
    static FlightRecorder recorder;
    return recorder;
}

FlightRecorder::FlightRecorder()
{
    const char* env = std::getenv("NEO_FLIGHT_RECORDER");
    if (env != nullptr && std::atoi(env) == 0) {
        enabled_.store(false, std::memory_order_relaxed);
    }
}

void
FlightRecorder::SetEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

bool
FlightRecorder::enabled() const
{
    return enabled_.load(std::memory_order_relaxed);
}

void
FlightRecorder::SetDirectory(const std::string& dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    directory_ = dir;
}

std::string
FlightRecorder::directory() const
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!directory_.empty()) {
            return directory_;
        }
    }
    const char* env = std::getenv("NEO_TELEMETRY_DIR");
    return env != nullptr ? std::string(env) : std::string();
}

void
FlightRecorder::Configure(const RecorderOptions& options)
{
    std::lock_guard<std::mutex> lock(mutex_);
    options_ = options;
    ranks_.clear();
}

FlightRecorder::RankState&
FlightRecorder::StateFor(int rank)
{
    return ranks_[rank];  // caller holds mutex_
}

void
FlightRecorder::RecordOp(int rank, const char* op_name, int64_t t_ns)
{
    if (!enabled()) {
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    StateFor(rank).ops.Push(OpEntry{op_name, t_ns}, options_.op_ring);
}

void
FlightRecorder::RecordEvent(int rank, const char* kind,
                            const std::string& detail)
{
    if (!enabled()) {
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    StateFor(rank).events.Push(EventEntry{NowNs(), kind, detail},
                               options_.event_ring);
}

void
FlightRecorder::RecordStep(int rank, uint64_t step, double seconds,
                           double loss)
{
    if (!enabled()) {
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    StateFor(rank).steps.Push(StepEntry{step, seconds, loss},
                              options_.step_ring);
}

void
FlightRecorder::RecordMetricsDelta(int rank)
{
    if (!enabled()) {
        return;
    }
    // Take the registry snapshot before this recorder's lock: the
    // registry never calls back into the recorder, but keeping the two
    // locks un-nested makes the no-deadlock argument trivial.
    RegistrySnapshot snap = MetricsRegistry::Get().Export();
    const int64_t now = NowNs();

    std::lock_guard<std::mutex> lock(mutex_);
    RankState& state = StateFor(rank);
    DeltaEntry entry;
    entry.t_ns = now;
    for (const auto& [name, value] : snap.counters) {
        uint64_t prev = 0;
        for (const auto& [base_name, base_value] : state.counter_baseline) {
            if (base_name == name) {
                prev = base_value;
                break;
            }
        }
        // A counter below its baseline means Reset() ran in between;
        // treat the current value as the delta from zero.
        const uint64_t delta = value >= prev ? value - prev : value;
        if (delta != 0) {
            entry.deltas.emplace_back(name, delta);
        }
    }
    state.counter_baseline = std::move(snap.counters);
    state.deltas.Push(std::move(entry), options_.delta_ring);
}

std::vector<FlightRecorder::OpEntry>
FlightRecorder::RecentOps(int rank) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ranks_.find(rank);
    return it == ranks_.end() ? std::vector<OpEntry>{} : it->second.ops.Ordered();
}

std::vector<FlightRecorder::StepEntry>
FlightRecorder::RecentSteps(int rank) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ranks_.find(rank);
    return it == ranks_.end() ? std::vector<StepEntry>{}
                              : it->second.steps.Ordered();
}

std::vector<FlightRecorder::EventEntry>
FlightRecorder::RecentEvents(int rank) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ranks_.find(rank);
    return it == ranks_.end() ? std::vector<EventEntry>{}
                              : it->second.events.Ordered();
}

std::string
FlightRecorder::BundleJson(int rank, const std::string& cause) const
{
    // Metrics snapshot first, same un-nested lock discipline as
    // RecordMetricsDelta.
    const std::string metrics_json = MetricsRegistry::Get().ToJson();

    std::vector<OpEntry> ops;
    std::vector<StepEntry> steps;
    std::vector<EventEntry> events;
    std::vector<DeltaEntry> deltas;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = ranks_.find(rank);
        if (it != ranks_.end()) {
            ops = it->second.ops.Ordered();
            steps = it->second.steps.Ordered();
            events = it->second.events.Ordered();
            deltas = it->second.deltas.Ordered();
        }
    }

    std::string out = "{\"neo_flight_recorder\":1";
    out += ",\"rank\":" + std::to_string(rank);
    out += ",\"cause\":\"" + JsonEscape(cause) + "\"";
    out += ",\"dumped_at_ns\":" + std::to_string(NowNs());
    out += ",\"last_op\":\"";
    if (!ops.empty() && ops.back().name != nullptr) {
        out += JsonEscape(ops.back().name);
    }
    out += "\"";

    out += ",\"ops\":[";
    for (size_t i = 0; i < ops.size(); i++) {
        out += i == 0 ? "" : ",";
        out += "{\"name\":\"";
        out += ops[i].name != nullptr ? JsonEscape(ops[i].name) : "";
        out += "\",\"t_ns\":" + std::to_string(ops[i].t_ns) + "}";
    }
    out += "]";

    out += ",\"steps\":[";
    for (size_t i = 0; i < steps.size(); i++) {
        out += i == 0 ? "" : ",";
        out += "{\"step\":" + std::to_string(steps[i].step) +
               ",\"seconds\":" + JsonDouble(steps[i].seconds) +
               ",\"loss\":" + JsonDouble(steps[i].loss) + "}";
    }
    out += "]";

    out += ",\"events\":[";
    for (size_t i = 0; i < events.size(); i++) {
        out += i == 0 ? "" : ",";
        out += "{\"t_ns\":" + std::to_string(events[i].t_ns) +
               ",\"kind\":\"";
        out += events[i].kind != nullptr ? JsonEscape(events[i].kind) : "";
        out += "\",\"detail\":\"" + JsonEscape(events[i].detail) + "\"}";
    }
    out += "]";

    out += ",\"metric_deltas\":[";
    for (size_t i = 0; i < deltas.size(); i++) {
        out += i == 0 ? "" : ",";
        out += "{\"t_ns\":" + std::to_string(deltas[i].t_ns) +
               ",\"counters\":{";
        for (size_t j = 0; j < deltas[i].deltas.size(); j++) {
            out += j == 0 ? "" : ",";
            out += "\"";
            out += JsonEscape(deltas[i].deltas[j].first);
            out += "\":";
            out += std::to_string(deltas[i].deltas[j].second);
        }
        out += "}}";
    }
    out += "]";

    out += ",\"metrics\":" + metrics_json;
    out += "}";
    return out;
}

std::string
FlightRecorder::DumpBundle(int rank, const std::string& cause) const
{
    if (!enabled()) {
        return "";
    }
    const std::string dir = directory();
    if (dir.empty()) {
        return "";
    }
    const std::string path =
        dir + "/flight_rank" + std::to_string(rank) + ".json";
    const std::string json = BundleJson(rank, cause);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return "";
    }
    const size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return wrote == json.size() ? path : "";
}

void
FlightRecorder::Clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ranks_.clear();
}

}  // namespace neo::obs
