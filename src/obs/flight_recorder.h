/**
 * @file
 * Always-on per-rank flight recorder: bounded rings of recent collective
 * ops, step records, lifecycle/failure events, and per-step metric
 * deltas, dumped as a versioned JSON post-mortem bundle from the failure
 * paths (poisoned barrier / RankFailure / barrier timeout /
 * ShrinkAfterFailure / serve-side shed storms). The rings record
 * unconditionally — a handful of mutex-protected slot writes per step,
 * measured in bench/micro_obs — so a crash always leaves a diagnosable
 * artifact, with or without tracing enabled; bundle *dumping* needs a
 * directory (NEO_TELEMETRY_DIR or SetDirectory), so production runs opt
 * in to artifacts while unit tests stay file-free by default.
 *
 * Bundle format (one JSON object, versioned header):
 *   {"neo_flight_recorder": 1, "rank": R, "cause": "...",
 *    "dumped_at_ns": T, "last_op": "...",
 *    "ops":    [{"name","t_ns"}...],            // oldest -> newest
 *    "steps":  [{"step","seconds","loss"}...],
 *    "events": [{"t_ns","kind","detail"}...],
 *    "metric_deltas": [{"t_ns","counters":{name:delta}}...],
 *    "metrics": <full MetricsRegistry JSON>}
 * scripts/trace_to_perfetto.py --bundle validates this schema in CI.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace neo::obs {

/** Ring capacities; Configure() resets all rings. */
struct RecorderOptions {
    /** Recent collective-op entries kept per rank. */
    size_t op_ring = 256;
    /** Last-N step records kept per rank. */
    size_t step_ring = 64;
    /** Lifecycle/failure events kept per rank. */
    size_t event_ring = 64;
    /** Per-step counter-delta snapshots kept per rank. */
    size_t delta_ring = 32;
};

/** Process-wide flight recorder singleton. */
class FlightRecorder
{
  public:
    static FlightRecorder& Get();

    /** Runtime kill switch (NEO_FLIGHT_RECORDER=0 disables at startup). */
    void SetEnabled(bool on);
    bool enabled() const;

    /**
     * Where DumpBundle writes. Overrides the NEO_TELEMETRY_DIR
     * environment variable; empty string reverts to the env value.
     * Dumping is a no-op while neither names a directory.
     */
    void SetDirectory(const std::string& dir);
    std::string directory() const;

    /** Replace ring capacities and clear all recorded state. */
    void Configure(const RecorderOptions& options);

    /** One collective entry. `op_name` must be a string literal (the
     *  ring stores the pointer); called by the comm backend at the top
     *  of every collective, before fault injection can fire — so a
     *  killed rank's last ring entry names the kill site. */
    void RecordOp(int rank, const char* op_name, int64_t t_ns);

    /** One lifecycle/failure event (abort, recover, shrink, shed...). */
    void RecordEvent(int rank, const char* kind, const std::string& detail);

    /** One completed training/serving step on `rank`. */
    void RecordStep(int rank, uint64_t step, double seconds, double loss);

    /**
     * Capture the registry's counters and append the non-zero deltas
     * against this rank's previous capture (one registry-level pass).
     */
    void RecordMetricsDelta(int rank);

    // ---- introspection (tests, harvest) ----

    struct OpEntry {
        const char* name = nullptr;
        int64_t t_ns = 0;
    };
    struct StepEntry {
        uint64_t step = 0;
        double seconds = 0.0;
        double loss = 0.0;
    };
    struct EventEntry {
        int64_t t_ns = 0;
        const char* kind = nullptr;
        std::string detail;
    };

    /** Recorded ops for `rank`, oldest first (empty if none). */
    std::vector<OpEntry> RecentOps(int rank) const;
    /** Recorded steps for `rank`, oldest first. */
    std::vector<StepEntry> RecentSteps(int rank) const;
    /** Recorded events for `rank`, oldest first. */
    std::vector<EventEntry> RecentEvents(int rank) const;

    /** Render `rank`'s bundle (see file header for the schema). */
    std::string BundleJson(int rank, const std::string& cause) const;

    /**
     * Write BundleJson to `<directory>/flight_rank<R>.json`. Returns the
     * written path, or "" when disabled, no directory is configured, or
     * the write failed. Never throws: this runs on failure paths.
     */
    std::string DumpBundle(int rank, const std::string& cause) const;

    /** Drop all recorded state (rings and delta baselines). */
    void Clear();

  private:
    FlightRecorder();

    template <typename T>
    struct Ring {
        std::vector<T> slots;
        size_t next = 0;
        uint64_t total = 0;

        void
        Push(T value, size_t capacity)
        {
            if (capacity == 0) {
                return;
            }
            if (slots.size() < capacity) {
                slots.push_back(std::move(value));
            } else {
                slots[next] = std::move(value);
            }
            next = (next + 1) % capacity;
            total++;
        }

        /** Oldest-first copy. */
        std::vector<T>
        Ordered() const
        {
            if (slots.size() < total) {
                std::vector<T> out(slots.begin() +
                                       static_cast<ptrdiff_t>(next),
                                   slots.end());
                out.insert(out.end(), slots.begin(),
                           slots.begin() + static_cast<ptrdiff_t>(next));
                return out;
            }
            return slots;
        }
    };

    struct DeltaEntry {
        int64_t t_ns = 0;
        std::vector<std::pair<std::string, uint64_t>> deltas;
    };

    struct RankState {
        Ring<OpEntry> ops;
        Ring<StepEntry> steps;
        Ring<EventEntry> events;
        Ring<DeltaEntry> deltas;
        /** Previous counter capture for RecordMetricsDelta. */
        std::vector<std::pair<std::string, uint64_t>> counter_baseline;
    };

    RankState& StateFor(int rank);

    std::atomic<bool> enabled_{true};
    mutable std::mutex mutex_;
    RecorderOptions options_;
    std::string directory_;
    std::map<int, RankState> ranks_;
};

}  // namespace neo::obs
