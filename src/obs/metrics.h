/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and histograms
 * with JSON/CSV export. Instruments follow the `neo.<layer>.<name>`
 * naming convention (e.g. neo.core.step_seconds, neo.comm.aborts) so
 * exports group naturally by subsystem.
 *
 * Instruments are created on first lookup and live for the process
 * lifetime; Reset() zeroes values but never invalidates references, so
 * call sites may cache `Counter&` in a local static. Counters and gauges
 * are lock-free atomics; histograms take a short per-instrument mutex
 * (they fold into a RunningStat and keep a bounded ring of recent
 * samples for percentile export).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/stats.h"

namespace neo::obs {

/** Monotonic event/byte counter. */
class Counter
{
  public:
    void
    Add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

    void Reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void Set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const { return value_.load(std::memory_order_relaxed); }

    void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Distribution of observations: Welford running stats plus a bounded
 * ring buffer of the most recent samples for percentile estimates.
 */
class Histogram
{
  public:
    /** Moments + percentiles over the retained sample window. */
    struct Snapshot {
        uint64_t count = 0;
        double sum = 0.0;
        double mean = 0.0;
        double min = 0.0;
        double max = 0.0;
        double stddev = 0.0;
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
    };

    explicit Histogram(size_t window = 1 << 14) : window_(window) {}

    void Observe(double x);

    Snapshot GetSnapshot() const;

    void Reset();

  private:
    mutable std::mutex mutex_;
    RunningStat stat_;
    /** Ring of the last `window_` observations. */
    std::vector<double> samples_;
    size_t next_ = 0;
    size_t window_;
};

/**
 * Registry of named instruments. A name resolves to the same instrument
 * for the process lifetime; looking the same name up as two different
 * kinds is a fatal misuse.
 */
class MetricsRegistry
{
  public:
    /** Process-wide shared registry. */
    static MetricsRegistry& Get();

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    Counter& GetCounter(const std::string& name);
    Gauge& GetGauge(const std::string& name);
    Histogram& GetHistogram(const std::string& name);

    /**
     * Zero every instrument's value. References stay valid (instruments
     * are never destroyed), so per-step snapshot loops can Reset between
     * steps without re-resolving names.
     */
    void Reset();

    /**
     * One JSON object:
     * {"counters":{name:value},"gauges":{...},
     *  "histograms":{name:{count,mean,min,max,stddev,p50,p95,p99,sum}}}
     */
    std::string ToJson() const;

    /** Flat CSV: name,kind,count,value,min,max,p50,p95,p99 per line. */
    std::string ToCsv() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace neo::obs
