/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and histograms
 * with JSON/CSV export. Instruments follow the `neo.<layer>.<name>`
 * naming convention (e.g. neo.core.step_seconds, neo.comm.aborts) so
 * exports group naturally by subsystem.
 *
 * Instruments are created on first lookup and live for the process
 * lifetime; Reset() zeroes values but never invalidates references, so
 * call sites may cache `Counter&` in a local static. Counters and gauges
 * are lock-free atomics; histograms take a short per-instrument mutex
 * (they fold into a RunningStat and keep a bounded ring of recent
 * samples for percentile export).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace neo::obs {

/** Monotonic event/byte counter. */
class Counter
{
  public:
    void
    Add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

    void Reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void Set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const { return value_.load(std::memory_order_relaxed); }

    void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Distribution of observations: Welford running stats plus a bounded
 * ring buffer of the most recent samples for percentile estimates.
 */
class Histogram
{
  public:
    /** Moments + percentiles over the retained sample window. */
    struct Snapshot {
        uint64_t count = 0;
        double sum = 0.0;
        double mean = 0.0;
        double min = 0.0;
        double max = 0.0;
        double stddev = 0.0;
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
        /** Tail percentile for serve-side latency SLOs. */
        double p999 = 0.0;
        /**
         * Observations no longer in the percentile window: once the
         * sample ring wraps, p50/p95/p99/p999 describe only the most
         * recent `window` observations. Non-zero means the percentiles
         * are approximate (see `approximate`); count/sum/mean/min/max
         * stay exact (they fold into the running stat).
         */
        uint64_t samples_dropped = 0;
        /** True when the ring wrapped and percentiles are windowed. */
        bool approximate = false;
    };

    explicit Histogram(size_t window = 1 << 14) : window_(window) {}

    void Observe(double x);

    Snapshot GetSnapshot() const;

    void Reset();

  private:
    mutable std::mutex mutex_;
    RunningStat stat_;
    /** Ring of the last `window_` observations. */
    std::vector<double> samples_;
    size_t next_ = 0;
    size_t window_;
};

/**
 * Point-in-time copy of every instrument in a registry, taken in one
 * pass under the registry lock so exporters and the telemetry harvest
 * see a mutually consistent set of values (a concurrent Reset() lands
 * entirely before or entirely after the snapshot, never interleaved).
 * Instruments are sorted by name.
 */
struct RegistrySnapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

    /** Value of a counter by exact name (0 when absent). */
    uint64_t CounterValue(const std::string& name) const;
    /** Value of a gauge by exact name (0.0 when absent). */
    double GaugeValue(const std::string& name) const;
};

/**
 * Registry of named instruments. A name resolves to the same instrument
 * for the process lifetime; looking the same name up as two different
 * kinds is a fatal misuse.
 */
class MetricsRegistry
{
  public:
    /** Process-wide shared registry. */
    static MetricsRegistry& Get();

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    Counter& GetCounter(const std::string& name);
    Gauge& GetGauge(const std::string& name);
    Histogram& GetHistogram(const std::string& name);

    /**
     * Zero every instrument's value. References stay valid (instruments
     * are never destroyed), so per-step snapshot loops can Reset between
     * steps without re-resolving names.
     */
    void Reset();

    /**
     * Copy every instrument's current value in one registry-level pass.
     * All exporters (JSON, CSV, Prometheus, telemetry harvest) render
     * from this snapshot, so a concurrent Reset() can never interleave
     * with an export: string formatting happens outside the lock on an
     * immutable copy.
     */
    RegistrySnapshot Export() const;

    /**
     * One JSON object:
     * {"counters":{name:value},"gauges":{...},
     *  "histograms":{name:{count,mean,min,max,stddev,p50,p95,p99,p999,
     *                      samples_dropped,approximate,sum}}}
     */
    std::string ToJson() const;

    /** Flat CSV: name,kind,count,value,min,max,p50,p95,p99,p999 lines. */
    std::string ToCsv() const;

    /**
     * Prometheus text exposition format 0.0.4: counters and gauges as-is,
     * histograms rendered as summaries (quantile 0.5/0.95/0.99/0.999 +
     * _sum/_count), instrument dots mangled to underscores. Percentiles
     * over a wrapped ring additionally export a
     * <name>_samples_dropped gauge so scrapers can see approximation.
     */
    std::string ToPrometheus() const;

    /** Render an already-taken snapshot (see Export) as ToJson would. */
    static std::string RenderJson(const RegistrySnapshot& snap);
    /** Render an already-taken snapshot as ToCsv would. */
    static std::string RenderCsv(const RegistrySnapshot& snap);
    /** Render an already-taken snapshot as ToPrometheus would. */
    static std::string RenderPrometheus(const RegistrySnapshot& snap);

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace neo::obs
