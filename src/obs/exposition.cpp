#include "obs/exposition.h"

#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

namespace neo::obs {

namespace {

std::string
ResolveDirectory(const std::string& configured)
{
    if (!configured.empty()) {
        return configured;
    }
    const char* env = std::getenv("NEO_TELEMETRY_DIR");
    return env != nullptr ? std::string(env) : std::string();
}

/** Write `body` to `path` via `path`.tmp + rename (atomic replace). */
bool
WriteAtomic(const std::string& path, const std::string& body)
{
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
        return false;
    }
    const size_t wrote = std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    if (wrote != body.size()) {
        std::remove(tmp.c_str());
        return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

SnapshotWriter::~SnapshotWriter()
{
    Stop();
}

std::string
SnapshotWriter::WriteOnce(const std::string& dir, const std::string& basename)
{
    const std::string resolved = ResolveDirectory(dir);
    if (resolved.empty()) {
        return "";
    }
    const RegistrySnapshot snap = MetricsRegistry::Get().Export();
    const std::string prom_path = resolved + "/" + basename + ".prom";
    const std::string json_path = resolved + "/" + basename + ".json";
    if (!WriteAtomic(prom_path, MetricsRegistry::RenderPrometheus(snap))) {
        return "";
    }
    if (!WriteAtomic(json_path, MetricsRegistry::RenderJson(snap))) {
        return "";
    }
    return prom_path;
}

bool
SnapshotWriter::Start(const Options& options)
{
    if (running()) {
        return false;
    }
    Options resolved = options;
    resolved.directory = ResolveDirectory(options.directory);
    if (resolved.directory.empty()) {
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_requested_ = false;
    }
    running_.store(true, std::memory_order_release);
    thread_ = std::thread(&SnapshotWriter::Loop, this, std::move(resolved));
    return true;
}

void
SnapshotWriter::Stop()
{
    if (!running()) {
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_requested_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) {
        thread_.join();
    }
    running_.store(false, std::memory_order_release);
}

void
SnapshotWriter::Loop(Options options)
{
    WriteOnce(options.directory, options.basename);
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_requested_) {
        cv_.wait_for(lock, options.period,
                     [this] { return stop_requested_; });
        lock.unlock();
        WriteOnce(options.directory, options.basename);
        lock.lock();
    }
}

}  // namespace neo::obs
