/**
 * @file
 * Fleet telemetry plane: a collective harvest that gathers every rank's
 * metrics snapshot, Fig.-12 StepBreakdown, and recent trace spans to
 * rank 0 over the existing collectives, with per-rank clock alignment so
 * the root can emit ONE merged Chrome/Perfetto timeline for the whole
 * fleet and judge cross-rank skew from the breakdowns.
 *
 * Protocol (every rank, in lockstep):
 *   1. Barrier() — flushes in-flight steps so snapshots are comparable.
 *   2. Sample NowNs() immediately after the barrier releases: all ranks
 *      are within one barrier-exit of each other, so the root can treat
 *      `root_clock − rank_clock` as rank r's clock offset. (In the
 *      threaded backend all ranks share one clock and offsets are ~0;
 *      the protocol is what a multi-process backend needs.)
 *   3. Serialize {clock, metrics Export(), FromSpans breakdown, last-N
 *      own-rank spans} with common/serialize.h and AllToAllBytes it with
 *      only send[root] non-empty.
 *   4. Root deserializes all ranks, stores offsets, and can render
 *      MergedChromeJson() (offset-shifted timestamps — a uniform shift
 *      per rank preserves span nesting) or AnalyzeStragglers().
 *
 * Wire format is versioned (kTelemetryMagic/kTelemetryVersion); a
 * mismatched peer is a hard error, not a silent misparse.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/process_group.h"
#include "obs/metrics.h"
#include "obs/step_breakdown.h"
#include "obs/straggler.h"

namespace neo::obs {

inline constexpr uint32_t kTelemetryMagic = 0x4e544c4dU;  // "NTLM"
inline constexpr uint32_t kTelemetryVersion = 1;

/** A Span whose name/cat survived serialization (owned strings). */
struct HarvestedSpan {
    std::string name;
    std::string cat;
    int64_t start_ns = 0;
    int64_t dur_ns = 0;
    int rank = -1;
    uint32_t tid = 0;
    uint16_t depth = 0;
};

/** Everything one rank contributes to a harvest. */
struct RankTelemetry {
    int rank = -1;
    /** NowNs() sampled right after the harvest barrier released. */
    int64_t clock_ns = 0;
    /** Root-computed `root_clock − rank_clock`; add to this rank's span
     *  timestamps to place them on the root's clock. 0 for the root. */
    int64_t clock_offset_ns = 0;
    RegistrySnapshot metrics;
    StepBreakdown breakdown;
    /** Most recent spans recorded by this rank's threads, plus (for the
     *  root's own entry) untagged shared-pool spans. */
    std::vector<HarvestedSpan> spans;
};

/** Harvest knobs. */
struct HarvestOptions {
    /** Most recent spans each rank contributes (by start time). */
    size_t max_spans = 4096;
    /** Step-span name fed to StepBreakdown::FromSpans. */
    const char* step_name = "train_step";
    /** Rank that receives the fleet view. */
    int root = 0;
};

/** The root's merged fleet view (empty on non-root ranks). */
struct FleetTelemetry {
    std::vector<RankTelemetry> ranks;  ///< indexed by rank id

    bool empty() const { return ranks.empty(); }

    /** Per-rank breakdowns in rank order (for skew analysis). */
    std::vector<StepBreakdown> Breakdowns() const;

    /**
     * One Chrome trace-event JSON covering every rank, timestamps
     * shifted onto the root's clock, pid = rank + 1 (pid 0 = the root's
     * shared pool), same schema Tracer::ToChromeJson emits — so
     * scripts/trace_to_perfetto.py --check validates it unchanged.
     */
    std::string MergedChromeJson() const;

    /** Write MergedChromeJson to `path`; false on I/O failure. */
    bool WriteMergedChromeJson(const std::string& path) const;

    /** Run the breakdown-skew detector over Breakdowns() and publish
     *  the straggler gauges (see obs::StragglerDetector). */
    StragglerVerdict AnalyzeStragglers() const;
};

/**
 * Collective telemetry harvest: every rank of `pg` must call it (BSP).
 * Returns the populated fleet view on `options.root`, an empty one on
 * every other rank. Throws comm::RankFailure if the group is poisoned
 * mid-harvest, like any other collective.
 */
FleetTelemetry HarvestTelemetry(comm::ProcessGroup& pg,
                                const HarvestOptions& options =
                                    HarvestOptions());

/** Serialize one rank's contribution (exposed for tests). */
std::vector<uint8_t> SerializeRankTelemetry(const RankTelemetry& t);

/** Parse a serialized contribution; fatal on magic/version mismatch. */
RankTelemetry DeserializeRankTelemetry(std::vector<uint8_t> bytes);

}  // namespace neo::obs
