#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace neo::obs {

namespace {

/** Process epoch: first steady_clock read, so start_ns values stay small. */
int64_t
Epoch()
{
    static const int64_t epoch =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    return epoch;
}

thread_local int t_rank = -1;
thread_local uint16_t t_depth = 0;
thread_local Tracer::ThreadBuffer* t_buffer = nullptr;

/** Minimal JSON string escaping for span names/categories. */
void
AppendEscaped(std::string& out, const char* s)
{
    for (; *s != '\0'; s++) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
}

}  // namespace

int64_t
NowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count() -
           Epoch();
}

/**
 * Fixed-capacity single-writer span log. The owning thread writes slot
 * `count` then publishes with a release store; readers take an acquire
 * snapshot of `count` and copy the prefix — wait-free on both sides.
 */
struct Tracer::ThreadBuffer {
    explicit ThreadBuffer(size_t capacity, uint32_t tid_in)
        : slots(capacity), tid(tid_in) {}

    std::vector<Span> slots;
    std::atomic<size_t> count{0};
    std::atomic<uint64_t> dropped{0};
    uint32_t tid;
};

Tracer::Tracer()
{
    size_t capacity = size_t{1} << 16;
    if (const char* env = std::getenv("NEO_TRACE_BUFFER")) {
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0) {
            capacity = static_cast<size_t>(parsed);
        }
    }
    buffer_capacity_.store(capacity, std::memory_order_relaxed);
    if (const char* env = std::getenv("NEO_TRACE")) {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0) {
            runtime_level_.store(parsed >= 2 ? 2 : 1,
                                 std::memory_order_relaxed);
            enabled_.store(true, std::memory_order_relaxed);
        }
    }
}

Tracer&
Tracer::Get()
{
    // Intentionally leaked: lane/pool threads may still close spans during
    // static destruction, and a live registry keeps the thread buffers
    // reachable (so LeakSanitizer does not flag them).
    static Tracer* tracer = new Tracer();
    return *tracer;
}

void
Tracer::SetEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
Tracer::SetRuntimeLevel(int level)
{
    runtime_level_.store(level < 1 ? 1 : level, std::memory_order_relaxed);
}

int
Tracer::runtime_level() const
{
    return runtime_level_.load(std::memory_order_relaxed);
}

void
Tracer::SetThreadRank(int rank)
{
    t_rank = rank;
}

int
Tracer::ThreadRank()
{
    return t_rank;
}

void
Tracer::SetThreadBufferCapacity(size_t spans)
{
    buffer_capacity_.store(spans < 1 ? 1 : spans, std::memory_order_relaxed);
}

Tracer::ThreadBuffer*
Tracer::BufferForThisThread()
{
    if (t_buffer == nullptr) {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        auto* buffer = new ThreadBuffer(
            buffer_capacity_.load(std::memory_order_relaxed),
            static_cast<uint32_t>(buffers_.size()));
        buffers_.push_back(buffer);
        t_buffer = buffer;
    }
    return t_buffer;
}

void
Tracer::RecordClosedSpan(const char* name, const char* cat, int64_t start_ns,
                         int64_t dur_ns, uint16_t depth)
{
    ThreadBuffer* buffer = BufferForThisThread();
    const size_t n = buffer->count.load(std::memory_order_relaxed);
    if (n >= buffer->slots.size()) {
        buffer->dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Span& span = buffer->slots[n];
    span.name = name;
    span.cat = cat;
    span.start_ns = start_ns;
    span.dur_ns = dur_ns;
    span.rank = t_rank;
    span.tid = buffer->tid;
    span.depth = depth;
    buffer->count.store(n + 1, std::memory_order_release);
}

std::vector<Span>
Tracer::Collect() const
{
    std::vector<const ThreadBuffer*> buffers;
    {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        buffers.assign(buffers_.begin(), buffers_.end());
    }
    std::vector<Span> out;
    for (const ThreadBuffer* buffer : buffers) {
        const size_t n = buffer->count.load(std::memory_order_acquire);
        out.insert(out.end(), buffer->slots.begin(),
                   buffer->slots.begin() + static_cast<ptrdiff_t>(n));
    }
    return out;
}

uint64_t
Tracer::DroppedSpans() const
{
    std::lock_guard<std::mutex> lock(registry_mutex_);
    uint64_t dropped = 0;
    for (const ThreadBuffer* buffer : buffers_) {
        dropped += buffer->dropped.load(std::memory_order_relaxed);
    }
    return dropped;
}

void
Tracer::Clear()
{
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (ThreadBuffer* buffer : buffers_) {
        buffer->count.store(0, std::memory_order_release);
        buffer->dropped.store(0, std::memory_order_relaxed);
    }
}

std::string
Tracer::ToChromeJson() const
{
    const std::vector<Span> spans = Collect();

    // Name one process per rank (pid = rank + 1; pid 0 = shared pool) so
    // Perfetto's track grouping mirrors the simulated cluster.
    std::map<int, bool> ranks_seen;
    for (const Span& span : spans) {
        ranks_seen[span.rank] = true;
    }

    std::string out;
    out.reserve(128 + spans.size() * 96);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    char buf[160];
    for (const auto& [rank, unused] : ranks_seen) {
        (void)unused;
        if (!first) {
            out += ",";
        }
        first = false;
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                      "\"name\":\"process_name\",\"args\":{\"name\":\"",
                      rank + 1);
        out += buf;
        if (rank >= 0) {
            out += "rank " + std::to_string(rank);
        } else {
            out += "shared pool";
        }
        out += "\"}}";
    }
    for (const Span& span : spans) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += "{\"name\":\"";
        AppendEscaped(out, span.name);
        out += "\",\"cat\":\"";
        AppendEscaped(out, span.cat);
        // Chrome trace-event timestamps are microseconds (doubles keep
        // the ns fraction so short spans stay ordered).
        std::snprintf(buf, sizeof(buf),
                      "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":%d,\"tid\":%u}",
                      static_cast<double>(span.start_ns) / 1e3,
                      static_cast<double>(span.dur_ns) / 1e3, span.rank + 1,
                      span.tid);
        out += buf;
    }
    out += "]}";
    return out;
}

bool
Tracer::WriteChromeJson(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return false;
    }
    const std::string json = ToChromeJson();
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = std::fclose(f) == 0 && written == json.size();
    return ok;
}

namespace detail {

uint16_t
EnterSpan()
{
    return t_depth++;
}

void
ExitSpan()
{
    t_depth--;
}

}  // namespace detail

}  // namespace neo::obs
