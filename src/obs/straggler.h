/**
 * @file
 * Straggler / anomaly detection for the BSP world. Two complementary
 * signals:
 *
 *  - **Barrier-arrival lateness** (primary, live): in a lockstep BSP
 *    schedule every rank's step wall-clock is identical by construction
 *    — a delay injected into one rank inflates everyone's step equally,
 *    because the fast ranks spend the difference waiting in the barrier.
 *    Step-time EWMAs therefore cannot *localize* a straggler. What does
 *    localize it is who arrives at each barrier last and by how much:
 *    the comm backend records, for every barrier generation, each rank's
 *    arrival time minus the first arrival's, and the detector keeps a
 *    per-rank envelope of that lateness (instant attack, slow release —
 *    see StragglerOptions::release_alpha). The straggler is the argmax
 *    when it clears a noise floor and a skew ratio over the median.
 *
 *  - **Harvested breakdown skew** (post-hoc, cross-rank): from a
 *    HarvestTelemetry pass, each rank's non-communication time
 *    (step_seconds − ExposedComm()) measures real work; barrier waits of
 *    the fast ranks land in comm buckets. The rank doing the most
 *    non-comm work while peers wait is the straggler.
 *
 * Verdicts publish `neo.obs.straggler_rank` (−1 = none) and
 * `neo.obs.straggler_skew` gauges, and Describe() feeds the barrier-
 * timeout / recovery error messages so a stuck run names its suspect.
 */
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/step_breakdown.h"

namespace neo::obs {

/** Detection thresholds; Configure() resets accumulated state. */
struct StragglerOptions {
    /** EWMA smoothing factor for step time. */
    double ewma_alpha = 0.25;
    /**
     * Release rate of the arrival-lateness envelope (instant attack,
     * EWMA release): a late arrival sets the envelope, each on-time
     * arrival decays it by this fraction. Collectives run several
     * internal barriers and a straggler is only late to the first one,
     * so a symmetric EWMA would average the spikes away.
     */
    double release_alpha = 0.05;
    /** Flag when max lateness exceeds this multiple of the median. */
    double skew_threshold = 3.0;
    /** Ignore lateness below this (scheduling jitter), seconds. */
    double noise_floor_seconds = 1e-3;
};

/** Result of one detection pass. */
struct StragglerVerdict {
    /** Suspected rank, −1 when nothing cleared the thresholds. */
    int rank = -1;
    bool flagged = false;
    /** max signal / max(median signal, noise floor). */
    double skew = 0.0;
    /** The flagged rank's signal (lateness or non-comm seconds). */
    double max_seconds = 0.0;
    /** Median signal across ranks. */
    double median_seconds = 0.0;

    /** Human-readable one-liner; "" when not flagged. */
    std::string Describe() const;
};

/**
 * Straggler detector. Get() returns the process-wide singleton that a
 * single training/serving world feeds by default; a fleet of replicas
 * constructs one instance per world (ThreadedWorld::Options::detector)
 * so one replica's slow rank cannot mask another's.
 */
class StragglerDetector
{
  public:
    static StragglerDetector& Get();

    StragglerDetector() = default;

    /** Replace thresholds and clear all accumulated EWMAs. */
    void Configure(const StragglerOptions& options);

    /** One barrier arrival: `lateness_seconds` behind the generation's
     *  first arrival. Called from inside the comm backend's barrier. */
    void RecordArrival(int rank, double lateness_seconds);

    /** One completed step on `rank` (global sanity signal under BSP). */
    void RecordStep(int rank, double seconds);

    /** Arrival-lateness EWMA for `rank` (0 if never recorded). */
    double ArrivalEwma(int rank) const;

    /** Step-time EWMA for `rank` (0 if never recorded). */
    double StepEwma(int rank) const;

    /**
     * Judge the arrival-lateness EWMAs and publish the
     * neo.obs.straggler_rank / neo.obs.straggler_skew gauges.
     */
    StragglerVerdict Analyze();

    /** Analyze harvested per-rank breakdowns (non-comm-time skew) and
     *  publish the same gauges. Index in `per_rank` is the rank id. */
    StragglerVerdict AnalyzeBreakdowns(
        const std::vector<StepBreakdown>& per_rank);

    /**
     * Pure function behind AnalyzeBreakdowns: no gauges, no state —
     * unit-testable with synthetic breakdowns.
     */
    static StragglerVerdict FromBreakdowns(
        const std::vector<StepBreakdown>& per_rank,
        const StragglerOptions& options = StragglerOptions());

    /** Analyze() and return its Describe() ("" when nothing flagged). */
    std::string DescribeStraggler();

    /** Drop all accumulated EWMAs (thresholds kept). */
    void Clear();

  private:
    static StragglerVerdict Judge(const std::vector<std::pair<int, double>>&
                                      signal_by_rank,
                                  const StragglerOptions& options);
    void PublishVerdict(const StragglerVerdict& verdict);

    mutable std::mutex mutex_;
    StragglerOptions options_;
    std::map<int, double> arrival_ewma_;
    std::map<int, double> step_ewma_;
};

}  // namespace neo::obs
