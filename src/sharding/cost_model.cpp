#include "sharding/cost_model.h"

#include <algorithm>

#include "common/logging.h"

namespace neo::sharding {

const char*
SchemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::kTableWise: return "table-wise";
      case Scheme::kRowWise: return "row-wise";
      case Scheme::kColumnWise: return "column-wise";
      case Scheme::kDataParallel: return "data-parallel";
      case Scheme::kTableRowWise: return "table-row-wise";
    }
    return "unknown";
}

double
OptimizerStateBytes(const TableConfig& table, bool row_wise_adagrad)
{
    if (row_wise_adagrad) {
        // One FP32 moment per row regardless of storage precision.
        return static_cast<double>(table.rows) * sizeof(float);
    }
    // Element-wise state mirrors the parameter tensor (FP32 accumulators).
    return static_cast<double>(table.rows) * static_cast<double>(table.dim) *
           sizeof(float);
}

ShardCost
EstimateShardCost(const TableConfig& table, const Shard& shard,
                  const Topology& topo, int64_t global_batch,
                  const CostModelParams& params)
{
    NEO_REQUIRE(global_batch > 0, "global batch must be positive");
    NEO_REQUIRE(topo.num_workers >= 1, "need at least one worker");

    const double b_global = static_cast<double>(global_batch);
    const double b_local = b_global / topo.num_workers;
    const double l = table.pooling;
    const double d_full = static_cast<double>(table.dim);
    const double bytes_per_elem =
        static_cast<double>(BytesPerElement(table.precision));

    ShardCost cost;

    // Cache-pressure penalty: very tall tables get worse reuse in HBM/cache.
    const double tall_factor =
        table.rows > params.tall_table_rows
            ? 1.0 + params.tall_table_penalty
            : 1.0;

    switch (shard.scheme) {
      case Scheme::kTableWise: {
        // Owner processes the whole global batch for this table.
        cost.compute =
            params.compute_weight * b_global * l * d_full * tall_factor;
        cost.input_comm = params.input_weight * b_global * l;
        cost.output_comm = params.output_weight * b_global * d_full;
        cost.memory_bytes =
            static_cast<double>(table.rows) * d_full * bytes_per_elem;
        break;
      }
      case Scheme::kRowWise: {
        // Rows split across workers: indices are bucketized so each shard
        // sees roughly L * rows_frac of the input, but partial pooled
        // sums for the WHOLE global batch must be ReduceScattered, so the
        // output term does not shrink with the shard (communication grows
        // linearly with trainer count, Sec. 4.2.2).
        const double rows_frac =
            static_cast<double>(shard.NumRows()) /
            std::max<double>(1.0, static_cast<double>(table.rows));
        cost.compute = params.compute_weight * b_global * l * rows_frac *
                       d_full * tall_factor;
        cost.input_comm = params.input_weight * b_global * l * rows_frac;
        cost.output_comm = params.output_weight * b_global * d_full;
        cost.memory_bytes = static_cast<double>(shard.NumRows()) * d_full *
                            bytes_per_elem;
        break;
      }
      case Scheme::kColumnWise: {
        // Column split: input indices are duplicated to every column shard
        // (Sec. 4.2.3), compute and output scale with the shard width.
        const double d_shard = static_cast<double>(shard.NumCols());
        cost.compute =
            params.compute_weight * b_global * l * d_shard * tall_factor;
        cost.input_comm = params.input_weight * b_global * l;  // duplicated
        cost.output_comm = params.output_weight * b_global * d_shard;
        cost.memory_bytes = static_cast<double>(table.rows) * d_shard *
                            bytes_per_elem;
        break;
      }
      case Scheme::kDataParallel: {
        // Replicated: every worker pools its local batch; no input/output
        // AllToAll, but the whole table is AllReduced each iteration.
        cost.compute =
            params.compute_weight * b_local * l * d_full * tall_factor;
        cost.input_comm = 0.0;
        cost.output_comm = params.dp_allreduce_weight *
                           static_cast<double>(table.rows) * d_full;
        cost.memory_bytes =
            static_cast<double>(table.rows) * d_full * bytes_per_elem;
        break;
      }
      case Scheme::kTableRowWise: {
        // Rows split across one node's workers only: the ReduceScatter of
        // partials stays on NVLink (discounted); only the final pooled
        // result crosses the scale-out fabric once per node.
        const double rows_frac =
            static_cast<double>(shard.NumRows()) /
            std::max<double>(1.0, static_cast<double>(table.rows));
        cost.compute = params.compute_weight * b_global * l * rows_frac *
                       d_full * tall_factor;
        cost.input_comm = params.input_weight * b_global * l * rows_frac;
        cost.output_comm =
            params.output_weight * b_global * d_full *
                params.intra_node_discount +
            params.output_weight * b_global * d_full /
                std::max(1, topo.workers_per_node);
        cost.memory_bytes = static_cast<double>(shard.NumRows()) * d_full *
                            bytes_per_elem;
        break;
      }
    }
    return cost;
}

}  // namespace neo::sharding
