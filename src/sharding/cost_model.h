/**
 * @file
 * Per-shard cost model (Sec. 3.0.1): for a table {H, D} with pooling L,
 * the input-distribution cost is proportional to L, the pooling compute to
 * L x D, and the pooled-output communication to D. Weights convert those
 * counts into common relative cost units and encode topology (intra-node
 * links are cheaper than scale-out links).
 */
#pragma once

#include "sharding/types.h"

namespace neo::sharding {

/** Tunable weights for the shard cost terms. */
struct CostModelParams {
    /** Cost per distributed input index (L term). */
    double input_weight = 0.05;
    /** Cost per pooled element touched (L*D term, HBM-bound lookup). */
    double compute_weight = 1.0;
    /** Cost per pooled-output element communicated (D term, scale-out). */
    double output_weight = 0.6;
    /** Cost per parameter AllReduced for data-parallel tables. */
    double dp_allreduce_weight = 0.002;
    /** Discount on output_comm for intra-node (NVLink) traffic. */
    double intra_node_discount = 0.15;
    /** Extra per-row cache-miss factor for very tall tables. */
    double tall_table_penalty = 0.1;
    /** Rows above which the tall-table penalty applies. */
    double tall_table_rows = 1e8;
};

/** Cluster shape the cost model needs. */
struct Topology {
    int num_workers = 1;
    int workers_per_node = 8;

    int NumNodes() const
    {
        return (num_workers + workers_per_node - 1) / workers_per_node;
    }
};

/**
 * Estimate the steady-state per-iteration cost of one shard.
 *
 * @param table The logical table the shard belongs to.
 * @param shard Shard geometry (scheme + row/col ranges).
 * @param topo Cluster shape.
 * @param global_batch Global mini-batch size B.
 * @param params Cost weights.
 */
ShardCost EstimateShardCost(const TableConfig& table, const Shard& shard,
                            const Topology& topo, int64_t global_batch,
                            const CostModelParams& params = {});

/**
 * Optimizer-state bytes per parameter row for capacity accounting: full
 * AdaGrad doubles storage; row-wise AdaGrad adds one float per row
 * (Sec. 4.1.4 / the F1 study's 96 TB -> 24 TB math).
 */
double OptimizerStateBytes(const TableConfig& table, bool row_wise_adagrad);

}  // namespace neo::sharding
