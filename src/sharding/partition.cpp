#include "sharding/partition.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/logging.h"

namespace neo::sharding {

namespace {

/** Item order sorted by descending cost (stable for determinism). */
std::vector<size_t>
DescendingOrder(const std::vector<double>& costs)
{
    std::vector<size_t> order(costs.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return costs[a] > costs[b];
    });
    return order;
}

}  // namespace

std::vector<int>
GreedyPartition(const std::vector<double>& costs, int num_bins)
{
    NEO_REQUIRE(num_bins >= 1, "need at least one bin");
    std::vector<int> assignment(costs.size(), 0);
    if (num_bins == 1) {
        return assignment;
    }
    const std::vector<size_t> order = DescendingOrder(costs);

    // Min-heap of (bin_sum, bin). Ties broken by bin id for determinism.
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    for (int b = 0; b < num_bins; b++) {
        heap.push({0.0, b});
    }
    for (size_t idx : order) {
        auto [sum, bin] = heap.top();
        heap.pop();
        assignment[idx] = bin;
        heap.push({sum + costs[idx], bin});
    }
    return assignment;
}

std::vector<int>
LdmPartition(const std::vector<double>& costs, int num_bins)
{
    NEO_REQUIRE(num_bins >= 1, "need at least one bin");
    std::vector<int> assignment(costs.size(), 0);
    if (num_bins == 1 || costs.empty()) {
        return assignment;
    }

    // A partial partition: k bins, each a (sum, member items) pair kept
    // sorted by descending sum.
    struct Partition {
        std::vector<double> sums;               // descending
        std::vector<std::vector<size_t>> items; // parallel to sums
        uint64_t seq = 0;                       // tie-break for determinism

        double Spread() const { return sums.front() - sums.back(); }
    };

    auto cmp = [](const Partition& a, const Partition& b) {
        if (a.Spread() != b.Spread()) {
            return a.Spread() < b.Spread();  // max-heap on spread
        }
        return a.seq > b.seq;
    };
    std::priority_queue<Partition, std::vector<Partition>, decltype(cmp)>
        heap(cmp);

    uint64_t seq = 0;
    for (size_t i = 0; i < costs.size(); i++) {
        Partition p;
        p.sums.assign(num_bins, 0.0);
        p.items.assign(num_bins, {});
        p.sums[0] = costs[i];
        p.items[0] = {i};
        p.seq = seq++;
        heap.push(std::move(p));
    }

    // Repeatedly merge the two partitions with the largest spread, pairing
    // the heaviest bin of one with the lightest bin of the other. This
    // cancels large differences early — the k-way differencing step.
    while (heap.size() > 1) {
        Partition a = heap.top();
        heap.pop();
        Partition b = heap.top();
        heap.pop();

        Partition merged;
        merged.sums.resize(num_bins);
        merged.items.resize(num_bins);
        merged.seq = seq++;
        for (int i = 0; i < num_bins; i++) {
            const int j = num_bins - 1 - i;  // reverse order of b
            merged.sums[i] = a.sums[i] + b.sums[j];
            merged.items[i] = std::move(a.items[i]);
            merged.items[i].insert(merged.items[i].end(),
                                   b.items[j].begin(), b.items[j].end());
        }
        // Re-sort bins by descending sum, carrying items along.
        std::vector<int> order(num_bins);
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
            return merged.sums[x] > merged.sums[y];
        });
        Partition sorted;
        sorted.sums.resize(num_bins);
        sorted.items.resize(num_bins);
        sorted.seq = merged.seq;
        for (int i = 0; i < num_bins; i++) {
            sorted.sums[i] = merged.sums[order[i]];
            sorted.items[i] = std::move(merged.items[order[i]]);
        }
        heap.push(std::move(sorted));
    }

    const Partition final_partition = heap.top();
    for (int b = 0; b < num_bins; b++) {
        for (size_t item : final_partition.items[b]) {
            assignment[item] = b;
        }
    }
    return assignment;
}

std::vector<int>
GreedyPartitionWithCapacity(const std::vector<double>& costs,
                            const std::vector<double>& memory,
                            double capacity, int num_bins)
{
    NEO_REQUIRE(num_bins >= 1, "need at least one bin");
    NEO_REQUIRE(costs.size() == memory.size(), "costs/memory size mismatch");
    std::vector<int> assignment(costs.size(), -1);
    std::vector<double> bin_cost(num_bins, 0.0);
    std::vector<double> bin_mem(num_bins, 0.0);

    const std::vector<size_t> order = DescendingOrder(costs);
    for (size_t idx : order) {
        int best = -1;
        for (int b = 0; b < num_bins; b++) {
            if (bin_mem[b] + memory[idx] > capacity) {
                continue;
            }
            if (best == -1 || bin_cost[b] < bin_cost[best]) {
                best = b;
            }
        }
        if (best == -1) {
            return {};  // heuristic found no feasible placement
        }
        assignment[idx] = best;
        bin_cost[best] += costs[idx];
        bin_mem[best] += memory[idx];
    }
    return assignment;
}

double
MaxBinSum(const std::vector<double>& costs, const std::vector<int>& assignment,
          int num_bins)
{
    NEO_REQUIRE(costs.size() == assignment.size(),
                "assignment size mismatch");
    std::vector<double> sums(num_bins, 0.0);
    for (size_t i = 0; i < costs.size(); i++) {
        NEO_REQUIRE(assignment[i] >= 0 && assignment[i] < num_bins,
                    "bin out of range");
        sums[assignment[i]] += costs[i];
    }
    return *std::max_element(sums.begin(), sums.end());
}

}  // namespace neo::sharding
