/**
 * @file
 * The sharding planner: chooses a sharding scheme per table, splits tables
 * into shards, and places shards on workers to balance cost under memory
 * capacity constraints (Sec. 4.2). This is the component that produced the
 * +20% throughput step in the paper's Fig. 13 optimization study.
 */
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "sharding/cost_model.h"
#include "sharding/partition.h"
#include "sharding/types.h"

namespace neo::sharding {

/**
 * Placement algorithm selector. kSizeGreedy balances parameter BYTES
 * only (the naive production default the paper's Fig. 13 baseline uses);
 * cost imbalance then emerges from pooling/dim heterogeneity. kGreedy
 * and kLdm balance the cost model's estimates.
 */
enum class PlacementAlgorithm { kRoundRobin, kSizeGreedy, kGreedy, kLdm };

/** Planner knobs. */
struct PlannerOptions {
    Topology topo;
    int64_t global_batch = 65536;
    /** Usable HBM bytes per worker (after framework/NCCL reservations). */
    double hbm_bytes_per_worker = 32e9;
    bool allow_row_wise = true;
    bool allow_column_wise = true;
    bool allow_data_parallel = true;
    /** Prefer hierarchical table-row-wise over flat row-wise for big tables. */
    bool allow_table_row_wise = false;
    /** Column-wise splitting applies to tables at least this wide. */
    int64_t cw_min_dim = 256;
    /** Load-triggered CW splitting needs at least this many columns. */
    int64_t cw_balance_min_dim = 64;
    /**
     * A table whose TW cost exceeds this fraction of the per-worker cost
     * budget is column-split for balance (0 disables load splitting).
     */
    double cw_cost_trigger = 0.6;
    /** Target width of each column shard. */
    int64_t cw_shard_dim = 128;
    /** Row-wise AdaGrad optimizer-state accounting (1 float per row). */
    bool row_wise_adagrad = true;
    /**
     * Tables larger than this fraction of a worker's HBM are row-wise
     * sharded even though they would technically fit: a near-capacity
     * table leaves no packing headroom for anything else.
     */
    double rw_trigger_fraction = 0.5;
    PlacementAlgorithm placement = PlacementAlgorithm::kLdm;
    CostModelParams cost_params;
};

/** Result of planning: shards with placements plus balance diagnostics. */
struct ShardingPlan {
    std::vector<Shard> shards;
    std::vector<ShardCost> costs;  // parallel to shards
    /** Total balancing cost per worker (includes replicated DP cost). */
    std::vector<double> worker_cost;
    /** Memory bytes per worker (parameters + optimizer state). */
    std::vector<double> worker_memory;
    LoadBalance balance;
    bool feasible = true;
    std::string note;

    /** Shards assigned to one worker. */
    std::vector<const Shard*> ShardsForWorker(int worker) const;

    /** Scheme chosen for a given table (all its shards share it). */
    Scheme SchemeForTable(int table) const;
};

/**
 * Re-plan placement over a shrunken survivor set (elastic recovery,
 * core/elastic.h): same options, but the topology is clamped to
 * `survivors` workers (workers_per_node likewise, so a single-node
 * remainder doesn't claim more intra-node peers than exist). The result
 * is a fresh plan for a dense 0..survivors-1 world; restoring state into
 * it is the checkpointer's job.
 */
ShardingPlan PlanForSurvivors(const PlannerOptions& options,
                              const std::vector<TableConfig>& tables,
                              int survivors);

/** Scheme selection + splitting + placement. */
class ShardingPlanner
{
  public:
    explicit ShardingPlanner(PlannerOptions options);

    /** Produce a plan for the given tables. */
    ShardingPlan Plan(const std::vector<TableConfig>& tables) const;

    const PlannerOptions& options() const { return options_; }

  private:
    /**
     * Pick the scheme for one table from sizes, the cost comparison, and
     * the per-worker cost budget (hot tables split column-wise for load
     * balance even when they fit in memory — the Fig. 13 mechanism).
     */
    Scheme ChooseScheme(const TableConfig& table, double cost_budget) const;

    /** Expand one table into shards under the chosen scheme. */
    void MakeShards(int table_idx, const TableConfig& table, Scheme scheme,
                    double cost_budget, std::vector<Shard>& out) const;

    /** Table-wise cost estimate used for budgeting. */
    double TableWiseCost(const TableConfig& table) const;

    /** Memory footprint of a shard including optimizer state. */
    double ShardMemoryBytes(const TableConfig& table,
                            const Shard& shard) const;

    PlannerOptions options_;
};

}  // namespace neo::sharding
