/**
 * @file
 * Core types for hybrid embedding-table sharding (Sec. 4.2).
 *
 * Four sharding primitives (Fig. 8) plus the hierarchical table-wise-then-
 * row-wise variant:
 *  - table-wise  (TW):  whole tables placed on workers; pooled AllToAll.
 *  - row-wise    (RW):  row ranges on workers; bucketized input,
 *                       ReduceScatter of partial pools.
 *  - column-wise (CW):  embedding-dim ranges; duplicated input indices,
 *                       same AllToAll flow as TW.
 *  - data-parallel (DP): small tables replicated; gradients AllReduced.
 *  - table-row-wise (TWRW): rows split only across one node's workers,
 *                       exploiting fast intra-node scale-up links.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/float_types.h"

namespace neo::sharding {

/** Sharding primitive applied to one table. */
enum class Scheme {
    kTableWise,
    kRowWise,
    kColumnWise,
    kDataParallel,
    kTableRowWise,
};

/** Short name for logs and bench output. */
const char* SchemeName(Scheme scheme);

/** Static configuration of one logical embedding table. */
struct TableConfig {
    std::string name;
    /** Hash size H (number of rows). */
    int64_t rows = 0;
    /** Embedding dimension D. */
    int64_t dim = 0;
    /** Average pooling size L (indices per sample). */
    double pooling = 1.0;
    /** Row storage precision. */
    Precision precision = Precision::kFp32;

    /** Parameter bytes for the whole table. */
    double
    ParamBytes() const
    {
        return static_cast<double>(rows) * static_cast<double>(dim) *
               static_cast<double>(BytesPerElement(precision));
    }
};

/** One physical shard of a table, placed on a worker. */
struct Shard {
    /** Index of the table in the model's table list. */
    int table = -1;
    Scheme scheme = Scheme::kTableWise;
    /** Row range [row_begin, row_end) for RW / TWRW shards. */
    int64_t row_begin = 0;
    int64_t row_end = 0;
    /** Column range [col_begin, col_end) for CW shards. */
    int64_t col_begin = 0;
    int64_t col_end = 0;
    /** Assigned worker (GPU) id; -1 until placement. */
    int worker = -1;

    int64_t NumRows() const { return row_end - row_begin; }
    int64_t NumCols() const { return col_end - col_begin; }
};

/** Per-shard cost estimate, in abstract (relative) cost units. */
struct ShardCost {
    /** Embedding lookup + update cost (HBM-bandwidth bound). */
    double compute = 0.0;
    /** Input index redistribution cost. */
    double input_comm = 0.0;
    /** Pooled-output communication cost. */
    double output_comm = 0.0;
    /** Parameter + optimizer-state bytes on the owning worker. */
    double memory_bytes = 0.0;

    double Total() const { return compute + input_comm + output_comm; }
};

}  // namespace neo::sharding
