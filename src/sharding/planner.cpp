#include "sharding/planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace neo::sharding {

std::vector<const Shard*>
ShardingPlan::ShardsForWorker(int worker) const
{
    std::vector<const Shard*> result;
    for (const auto& shard : shards) {
        if (shard.worker == worker ||
            shard.scheme == Scheme::kDataParallel) {
            result.push_back(&shard);
        }
    }
    return result;
}

Scheme
ShardingPlan::SchemeForTable(int table) const
{
    for (const auto& shard : shards) {
        if (shard.table == table) {
            return shard.scheme;
        }
    }
    NEO_FATAL("table ", table, " has no shards in plan");
}

ShardingPlan
PlanForSurvivors(const PlannerOptions& options,
                 const std::vector<TableConfig>& tables, int survivors)
{
    NEO_REQUIRE(survivors >= 1, "need at least one survivor");
    PlannerOptions shrunk = options;
    shrunk.topo.num_workers = survivors;
    shrunk.topo.workers_per_node =
        std::min(shrunk.topo.workers_per_node, survivors);
    return ShardingPlanner(shrunk).Plan(tables);
}

ShardingPlanner::ShardingPlanner(PlannerOptions options)
    : options_(std::move(options))
{
    NEO_REQUIRE(options_.topo.num_workers >= 1, "need at least one worker");
    NEO_REQUIRE(options_.hbm_bytes_per_worker > 0, "need HBM capacity");
}

double
ShardingPlanner::ShardMemoryBytes(const TableConfig& table,
                                  const Shard& shard) const
{
    // Scale full-table optimizer state by the shard's parameter fraction.
    const double param_bytes = table.ParamBytes();
    const double state_bytes =
        OptimizerStateBytes(table, options_.row_wise_adagrad);
    double frac = 1.0;
    switch (shard.scheme) {
      case Scheme::kRowWise:
      case Scheme::kTableRowWise:
        frac = static_cast<double>(shard.NumRows()) /
               std::max<double>(1.0, static_cast<double>(table.rows));
        break;
      case Scheme::kColumnWise:
        // Column shards replicate the per-row optimizer moment (the paper
        // notes CW adds one state value per shard, Sec. 4.2.3), so only
        // parameter bytes shrink with the shard width.
        frac = static_cast<double>(shard.NumCols()) /
               std::max<double>(1.0, static_cast<double>(table.dim));
        return param_bytes * frac + state_bytes;
      default:
        break;
    }
    return (param_bytes + state_bytes) * frac;
}

double
ShardingPlanner::TableWiseCost(const TableConfig& table) const
{
    Shard probe;
    probe.scheme = Scheme::kTableWise;
    probe.row_end = table.rows;
    probe.col_end = table.dim;
    return EstimateShardCost(table, probe, options_.topo,
                             options_.global_batch, options_.cost_params)
        .Total();
}

Scheme
ShardingPlanner::ChooseScheme(const TableConfig& table,
                              double cost_budget) const
{
    const double full_bytes =
        table.ParamBytes() + OptimizerStateBytes(table,
                                                 options_.row_wise_adagrad);
    const double capacity = options_.hbm_bytes_per_worker;

    // Tables that cannot fit on one worker — or would leave no packing
    // headroom — must be split. Wide tables prefer a column split (same
    // AllToAll flow as table-wise); otherwise rows are split, which is
    // the only scheme that divides the hash dimension (the F1 study).
    if (full_bytes > capacity * options_.rw_trigger_fraction) {
        // Moderately-oversized wide tables split by columns (same
        // AllToAll flow as TW). Multi-worker-sized tables go row-wise:
        // column shards of a TB-scale table are still huge and pack
        // poorly, and replicating per-row optimizer state per column
        // shard stops being cheap.
        if (options_.allow_column_wise &&
            table.dim >= options_.cw_min_dim && full_bytes <= capacity) {
            const double min_shard_bytes =
                table.ParamBytes() * 16.0 / static_cast<double>(table.dim) +
                OptimizerStateBytes(table, options_.row_wise_adagrad);
            if (min_shard_bytes <=
                capacity * options_.rw_trigger_fraction) {
                return Scheme::kColumnWise;
            }
        }
        if (options_.allow_table_row_wise &&
            full_bytes <= capacity * options_.topo.workers_per_node) {
            return Scheme::kTableRowWise;
        }
        NEO_REQUIRE(options_.allow_row_wise,
                    "table ", table.name, " exceeds worker memory and ",
                    "row-wise sharding is disabled");
        return Scheme::kRowWise;
    }

    // Small tables: replicate if the cluster-wide cost of replication
    // (every worker pools its local batch + AllReduces the whole table)
    // beats the table-wise AllToAll flow. Comparing per-worker shard
    // costs would be misleading — DP spreads its cost over all workers.
    // Replicas also occupy memory on EVERY worker, so cap DP tables at a
    // small fraction of HBM.
    if (options_.allow_data_parallel &&
        full_bytes <= 0.02 * capacity) {
        Shard probe;
        probe.scheme = Scheme::kDataParallel;
        probe.row_end = table.rows;
        probe.col_end = table.dim;
        const ShardCost dp =
            EstimateShardCost(table, probe, options_.topo,
                              options_.global_batch, options_.cost_params);
        probe.scheme = Scheme::kTableWise;
        const ShardCost tw =
            EstimateShardCost(table, probe, options_.topo,
                              options_.global_batch, options_.cost_params);
        if (dp.Total() * options_.topo.num_workers < tw.Total()) {
            return Scheme::kDataParallel;
        }
    }

    // Hot tables (cost above the per-worker budget share) are column-
    // split for load balance even though they fit in memory — the paper's
    // Fig. 13 case where CW's duplicated-input overhead is outweighed by
    // the better balance.
    if (options_.allow_column_wise && options_.cw_cost_trigger > 0 &&
        cost_budget > 0 && table.dim >= options_.cw_balance_min_dim &&
        TableWiseCost(table) > options_.cw_cost_trigger * cost_budget) {
        return Scheme::kColumnWise;
    }

    // Wide tables benefit from column splitting for finer-grained balance.
    if (options_.allow_column_wise && table.dim >= options_.cw_min_dim) {
        return Scheme::kColumnWise;
    }
    return Scheme::kTableWise;
}

void
ShardingPlanner::MakeShards(int table_idx, const TableConfig& table,
                            Scheme scheme, double cost_budget,
                            std::vector<Shard>& out) const
{
    Shard base;
    base.table = table_idx;
    base.scheme = scheme;
    base.row_begin = 0;
    base.row_end = table.rows;
    base.col_begin = 0;
    base.col_end = table.dim;

    switch (scheme) {
      case Scheme::kTableWise:
      case Scheme::kDataParallel: {
        out.push_back(base);
        break;
      }
      case Scheme::kColumnWise: {
        // Width: the configured target, shrunk until each shard fits the
        // memory budget (per-row optimizer state is replicated per shard
        // and does not shrink with width).
        const double state_bytes =
            OptimizerStateBytes(table, options_.row_wise_adagrad);
        const double budget =
            options_.hbm_bytes_per_worker * options_.rw_trigger_fraction;
        int64_t width = std::max<int64_t>(1, options_.cw_shard_dim);
        // Load-driven width: enough shards that each is under the cost
        // budget share.
        if (cost_budget > 0 && options_.cw_cost_trigger > 0) {
            const double cost = TableWiseCost(table);
            const double target = options_.cw_cost_trigger * cost_budget;
            if (cost > target) {
                const int64_t load_shards = static_cast<int64_t>(
                    std::ceil(cost / target));
                const int64_t load_width = std::max<int64_t>(
                    4, table.dim / std::max<int64_t>(1, load_shards));
                width = std::min(width, load_width / 4 * 4);
                width = std::max<int64_t>(4, width);
            }
        }
        if (budget > state_bytes) {
            const double per_col = table.ParamBytes() /
                                   static_cast<double>(table.dim);
            const int64_t fit_width = static_cast<int64_t>(
                (budget - state_bytes) / std::max(per_col, 1.0));
            width = std::max<int64_t>(
                4, std::min(width, fit_width / 4 * 4));
        }
        for (int64_t c = 0; c < table.dim; c += width) {
            Shard shard = base;
            shard.col_begin = c;
            shard.col_end = std::min(table.dim, c + width);
            out.push_back(shard);
        }
        break;
      }
      case Scheme::kRowWise: {
        const double full_bytes =
            table.ParamBytes() +
            OptimizerStateBytes(table, options_.row_wise_adagrad);
        const double usable = options_.hbm_bytes_per_worker;
        int num_shards;
        if (full_bytes > usable) {
            // A table bigger than one worker is fully distributed (the
            // F1 flow): every worker holds a slice, which also keeps the
            // per-worker packing uniform when several such tables exist.
            num_shards = options_.topo.num_workers;
        } else {
            // Near-capacity tables split into mid-sized shards that the
            // placement heuristic can pack around.
            num_shards = std::max<int>(
                2, static_cast<int>(full_bytes / (0.4 * usable)) + 1);
        }
        num_shards = std::min<int>(num_shards, options_.topo.num_workers);
        for (int s = 0; s < num_shards; s++) {
            Shard shard = base;
            shard.row_begin = table.rows * s / num_shards;
            shard.row_end = table.rows * (s + 1) / num_shards;
            out.push_back(shard);
        }
        break;
      }
      case Scheme::kTableRowWise: {
        const int g = options_.topo.workers_per_node;
        for (int s = 0; s < g; s++) {
            Shard shard = base;
            shard.row_begin = table.rows * s / g;
            shard.row_end = table.rows * (s + 1) / g;
            out.push_back(shard);
        }
        break;
      }
    }
}

ShardingPlan
ShardingPlanner::Plan(const std::vector<TableConfig>& tables) const
{
    NEO_REQUIRE(!tables.empty(), "no tables to shard");
    ShardingPlan plan;
    const int workers = options_.topo.num_workers;
    plan.worker_cost.assign(workers, 0.0);
    plan.worker_memory.assign(workers, 0.0);

    // --- 1. Scheme selection + shard expansion ------------------------
    // Per-worker cost budget: the balance target hot tables are split
    // against.
    double total_cost = 0.0;
    for (const auto& table : tables) {
        total_cost += TableWiseCost(table);
    }
    const double cost_budget = total_cost / workers;
    for (size_t t = 0; t < tables.size(); t++) {
        const Scheme scheme = ChooseScheme(tables[t], cost_budget);
        MakeShards(static_cast<int>(t), tables[t], scheme, cost_budget,
                   plan.shards);
    }

    // --- 2. Cost every shard ------------------------------------------
    plan.costs.reserve(plan.shards.size());
    for (const auto& shard : plan.shards) {
        ShardCost cost = EstimateShardCost(tables[shard.table], shard,
                                           options_.topo,
                                           options_.global_batch,
                                           options_.cost_params);
        cost.memory_bytes = ShardMemoryBytes(tables[shard.table], shard);
        plan.costs.push_back(cost);
    }

    // --- 3. Replicated (DP) shards load every worker -------------------
    std::vector<size_t> placeable;       // worker-level shards
    std::vector<size_t> node_grouped;    // TWRW shards, grouped per table
    for (size_t s = 0; s < plan.shards.size(); s++) {
        const Shard& shard = plan.shards[s];
        if (shard.scheme == Scheme::kDataParallel) {
            for (int w = 0; w < workers; w++) {
                plan.worker_cost[w] += plan.costs[s].Total();
                plan.worker_memory[w] += plan.costs[s].memory_bytes;
            }
        } else if (shard.scheme == Scheme::kTableRowWise) {
            node_grouped.push_back(s);
        } else {
            placeable.push_back(s);
        }
    }

    // --- 4. Place TWRW groups at node granularity ----------------------
    if (!node_grouped.empty()) {
        const int nodes = options_.topo.NumNodes();
        const int g = options_.topo.workers_per_node;
        // Group consecutive TWRW shards of the same table.
        std::vector<std::vector<size_t>> groups;
        for (size_t s : node_grouped) {
            if (groups.empty() ||
                plan.shards[groups.back().front()].table !=
                    plan.shards[s].table) {
                groups.emplace_back();
            }
            groups.back().push_back(s);
        }
        std::vector<double> group_costs;
        group_costs.reserve(groups.size());
        for (const auto& group : groups) {
            double total = 0.0;
            for (size_t s : group) {
                total += plan.costs[s].Total();
            }
            group_costs.push_back(total);
        }
        const std::vector<int> node_assign =
            options_.placement == PlacementAlgorithm::kLdm
                ? LdmPartition(group_costs, nodes)
                : GreedyPartition(group_costs, nodes);
        for (size_t gi = 0; gi < groups.size(); gi++) {
            const int node = node_assign[gi];
            for (size_t k = 0; k < groups[gi].size(); k++) {
                const size_t s = groups[gi][k];
                const int w = node * g + static_cast<int>(k % g);
                NEO_CHECK(w < workers, "TWRW worker overflow");
                plan.shards[s].worker = w;
                plan.worker_cost[w] += plan.costs[s].Total();
                plan.worker_memory[w] += plan.costs[s].memory_bytes;
            }
        }
    }

    // --- 5. Place worker-level shards ----------------------------------
    std::vector<double> item_costs;
    std::vector<double> item_memory;
    item_costs.reserve(placeable.size());
    for (size_t s : placeable) {
        item_costs.push_back(plan.costs[s].Total());
        item_memory.push_back(plan.costs[s].memory_bytes);
    }

    std::vector<int> assignment;
    // DP shards load every worker identically, so a uniform initial load
    // does not affect balance and LDM still applies; TWRW placement makes
    // loads non-uniform, which LDM cannot account for.
    const bool uniform_initial_load =
        plan.worker_cost.empty() ||
        std::all_of(plan.worker_cost.begin(), plan.worker_cost.end(),
                    [&](double c) { return c == plan.worker_cost[0]; });
    if (options_.placement == PlacementAlgorithm::kLdm &&
        uniform_initial_load) {
        assignment = LdmPartition(item_costs, workers);
        // Validate memory feasibility; LDM ignores capacity.
        std::vector<double> mem(workers, 0.0);
        bool ok = true;
        for (size_t i = 0; i < assignment.size(); i++) {
            mem[assignment[i]] += item_memory[i];
            if (mem[assignment[i]] + plan.worker_memory[assignment[i]] >
                options_.hbm_bytes_per_worker) {
                ok = false;
            }
        }
        if (!ok) {
            assignment.clear();
            plan.note = "LDM placement exceeded HBM; fell back to "
                        "capacity-constrained greedy";
        }
    }
    if (assignment.empty() && !item_costs.empty()) {
        // Greedy with initial loads and capacity awareness. First pass
        // places in descending COST order (best balance); if the packing
        // fails — memory is tight, as with A2 in FP32 — retry in
        // descending MEMORY order, which packs reliably at the expense of
        // balance (the paper's "very little room to explore placement").
        auto try_order = [&](bool by_memory) -> std::vector<int> {
            std::vector<size_t> order(item_costs.size());
            std::iota(order.begin(), order.end(), 0);
            std::stable_sort(order.begin(), order.end(),
                             [&](size_t a, size_t b) {
                                 return by_memory
                                            ? item_memory[a] >
                                                  item_memory[b]
                                            : item_costs[a] >
                                                  item_costs[b];
                             });
            std::vector<int> result(item_costs.size(), -1);
            std::vector<double> cost_now = plan.worker_cost;
            std::vector<double> mem_now = plan.worker_memory;
            for (size_t idx : order) {
                int best = -1;
                for (int w = 0; w < workers; w++) {
                    if (mem_now[w] + item_memory[idx] >
                        options_.hbm_bytes_per_worker) {
                        continue;
                    }
                    const double key = by_memory ? mem_now[w] : cost_now[w];
                    const double best_key =
                        best == -1 ? 0.0
                                   : (by_memory ? mem_now[best]
                                                : cost_now[best]);
                    if (best == -1 || key < best_key) {
                        best = w;
                    }
                }
                if (best == -1) {
                    return {};
                }
                result[idx] = best;
                cost_now[best] += item_costs[idx];
                mem_now[best] += item_memory[idx];
            }
            return result;
        };
        if (options_.placement == PlacementAlgorithm::kRoundRobin) {
            // Naive legacy default: cycle tables over workers in index
            // order, skipping workers that are out of memory.
            assignment.assign(item_costs.size(), -1);
            std::vector<double> mem_now = plan.worker_memory;
            int next = 0;
            for (size_t idx = 0; idx < item_costs.size(); idx++) {
                int chosen = -1;
                for (int probe = 0; probe < workers; probe++) {
                    const int w = (next + probe) % workers;
                    if (mem_now[w] + item_memory[idx] <=
                        options_.hbm_bytes_per_worker) {
                        chosen = w;
                        break;
                    }
                }
                if (chosen == -1) {
                    assignment.clear();
                    break;
                }
                assignment[idx] = chosen;
                mem_now[chosen] += item_memory[idx];
                next = (chosen + 1) % workers;
            }
        }
        const bool size_only =
            options_.placement == PlacementAlgorithm::kSizeGreedy;
        if (assignment.empty() &&
            options_.placement != PlacementAlgorithm::kRoundRobin) {
            assignment = try_order(/*by_memory=*/size_only);
        } else if (assignment.empty()) {
            assignment = try_order(/*by_memory=*/false);
        }
        if (assignment.empty() && !size_only) {
            assignment = try_order(/*by_memory=*/true);
            plan.note = "memory-first packing (capacity too tight for "
                        "cost-balanced placement)";
        }
        if (assignment.empty()) {
            plan.feasible = false;
            plan.note = "no feasible placement under per-worker memory "
                        "capacity";
            return plan;
        }
    }

    for (size_t i = 0; i < placeable.size(); i++) {
        const size_t s = placeable[i];
        plan.shards[s].worker = assignment[i];
        plan.worker_cost[assignment[i]] += plan.costs[s].Total();
        plan.worker_memory[assignment[i]] += plan.costs[s].memory_bytes;
    }

    // --- 5b. Local-search rebalance ------------------------------------
    // Move shards off the straggler worker whenever a lighter worker has
    // the memory headroom. With tight memory (e.g. FP32 A2) few moves are
    // legal — the paper's "very little room to explore placement"; freeing
    // memory (FP16) directly buys balance.
    if (options_.placement != PlacementAlgorithm::kRoundRobin &&
        options_.placement != PlacementAlgorithm::kSizeGreedy) {
        for (int pass = 0; pass < 200; pass++) {
            int hottest = 0;
            for (int w = 1; w < workers; w++) {
                if (plan.worker_cost[w] > plan.worker_cost[hottest]) {
                    hottest = w;
                }
            }
            bool moved = false;
            for (size_t s : placeable) {
                if (plan.shards[s].worker != hottest) {
                    continue;
                }
                const double cost = plan.costs[s].Total();
                const double mem = plan.costs[s].memory_bytes;
                for (int w = 0; w < workers && !moved; w++) {
                    if (w == hottest ||
                        plan.worker_memory[w] + mem >
                            options_.hbm_bytes_per_worker) {
                        continue;
                    }
                    // Accept only moves that strictly lower the straggler
                    // without making the target the new straggler.
                    if (plan.worker_cost[w] + cost <
                        plan.worker_cost[hottest]) {
                        plan.shards[s].worker = w;
                        plan.worker_cost[hottest] -= cost;
                        plan.worker_memory[hottest] -= mem;
                        plan.worker_cost[w] += cost;
                        plan.worker_memory[w] += mem;
                        moved = true;
                    }
                }
                if (moved) {
                    break;
                }
            }
            if (!moved) {
                break;
            }
        }
    }

    // --- 6. Balance diagnostics ----------------------------------------
    plan.balance = ComputeLoadBalance(plan.worker_cost);
    for (int w = 0; w < workers; w++) {
        if (plan.worker_memory[w] > options_.hbm_bytes_per_worker) {
            plan.feasible = false;
            plan.note = "worker " + std::to_string(w) + " over HBM capacity";
        }
    }
    return plan;
}

}  // namespace neo::sharding
