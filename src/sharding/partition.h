/**
 * @file
 * Placement algorithms for the multi-way number-partitioning problem of
 * balancing shard costs across workers (Sec. 4.2.5): the greedy LPT
 * heuristic and the largest differencing method (LDM, Karmarkar–Karp).
 */
#pragma once

#include <vector>

namespace neo::sharding {

/**
 * Greedy (longest-processing-time) partition: sort costs descending,
 * repeatedly assign the next item to the currently lightest bin.
 *
 * @param costs Per-item costs.
 * @param num_bins Number of bins (workers), >= 1.
 * @return Bin index per item.
 */
std::vector<int> GreedyPartition(const std::vector<double>& costs,
                                 int num_bins);

/**
 * Karmarkar–Karp largest differencing method generalized to k bins:
 * maintain partial partitions ordered by spread (max - min bin sum) and
 * repeatedly merge the two with the largest spread, pairing heavy bins
 * with light bins. Usually strictly better than greedy.
 *
 * @return Bin index per item.
 */
std::vector<int> LdmPartition(const std::vector<double>& costs,
                              int num_bins);

/**
 * Capacity-constrained greedy: like GreedyPartition, but an item may only
 * go to a bin whose accumulated memory stays within `capacity`.
 *
 * @param costs Per-item balancing costs.
 * @param memory Per-item memory footprints.
 * @param capacity Per-bin memory capacity.
 * @param num_bins Number of bins.
 * @return Bin per item, or an empty vector if no feasible assignment was
 *   found by the heuristic.
 */
std::vector<int> GreedyPartitionWithCapacity(
    const std::vector<double>& costs, const std::vector<double>& memory,
    double capacity, int num_bins);

/** Max bin sum achieved by an assignment (for tests and planners). */
double MaxBinSum(const std::vector<double>& costs,
                 const std::vector<int>& assignment, int num_bins);

}  // namespace neo::sharding
