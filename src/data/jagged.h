/**
 * @file
 * The "combined format" sparse-input representation (Sec. 4.4).
 *
 * Instead of per-table offset/index tensor pairs (a thousand tiny tensors
 * for production DLRMs), all tables' inputs are packed into one lengths
 * array and one indices array: lengths[t*batch + b] is the number of
 * indices sample b contributes to table t, and the indices of all tables
 * are concatenated in table order. This consolidates host-to-device copies
 * and is directly consumable by the fused embedding kernel.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ops/embedding_bag.h"

namespace neo::data {

/** Multi-table jagged sparse input in combined lengths+indices format. */
struct KeyedJagged {
    size_t batch = 0;
    size_t num_tables = 0;
    /** num_tables * batch lengths, table-major. */
    std::vector<uint32_t> lengths;
    /** All tables' indices concatenated in table order. */
    std::vector<int64_t> indices;
    /** num_tables + 1 offsets into `indices`. */
    std::vector<size_t> table_offsets;

    /** Build an empty container for `num_tables` tables of `batch` samples. */
    static KeyedJagged Empty(size_t num_tables, size_t batch);

    /** Recompute table_offsets from lengths (after filling lengths). */
    void RebuildOffsets();

    /** Lengths span for one table. */
    std::span<const uint32_t> LengthsForTable(size_t t) const;

    /** Indices span for one table. */
    std::span<const int64_t> IndicesForTable(size_t t) const;

    /** View usable by the fused embedding ops. */
    ops::TableInput InputForTable(size_t t) const;

    /** Total number of indices across tables. */
    size_t TotalIndices() const { return indices.size(); }

    /** Validate internal consistency (lengths vs offsets vs indices). */
    void CheckConsistent() const;

    /**
     * Extract the sub-batch [begin, end) across all tables (used to carve
     * a worker's local batch out of a global batch).
     */
    KeyedJagged SliceBatch(size_t begin, size_t end) const;

    /** Extract a single table's data as a 1-table KeyedJagged. */
    KeyedJagged SliceTable(size_t t) const;
};

/**
 * Concatenate per-source KeyedJagged pieces (same table set, varying batch)
 * along the batch dimension in source order — the (W,T,B) -> (T,W,B)
 * permute step after the input AllToAll (Sec. 4.4).
 */
KeyedJagged ConcatBatches(std::span<const KeyedJagged> pieces);

/**
 * Result of bucketizing one table's input by row range for row-wise
 * sharding: per-bucket lengths/indices with indices rebased to the bucket's
 * row range.
 */
struct Bucketized {
    /** One KeyedJagged (single table) per bucket. */
    std::vector<KeyedJagged> buckets;
};

/**
 * Bucketize a single-table input by row boundaries.
 *
 * @param input Single-table KeyedJagged.
 * @param row_splits Bucket boundaries: bucket i covers
 *   [row_splits[i], row_splits[i+1]).
 * @param rebase Subtract the bucket's row_begin from each index.
 */
Bucketized BucketizeRows(const KeyedJagged& input,
                         std::span<const int64_t> row_splits,
                         bool rebase = true);

}  // namespace neo::data
