#include "data/reader_tier.h"

#include "common/logging.h"

namespace neo::data {

ReaderTier::ReaderTier(const DatasetConfig& config,
                       const ReaderTierOptions& options)
    : config_(config), options_(options)
{
    NEO_REQUIRE(options_.num_readers >= 1, "need at least one reader");
    NEO_REQUIRE(options_.queue_capacity >= 1, "need queue capacity");
    readers_.reserve(options_.num_readers);
    for (int r = 0; r < options_.num_readers; r++) {
        readers_.emplace_back([this, r] { ReaderLoop(r); });
    }
}

ReaderTier::~ReaderTier()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
    for (auto& reader : readers_) {
        reader.join();
    }
}

void
ReaderTier::ReaderLoop(int reader_id)
{
    // Each reader owns a disjoint SAMPLING stream, but all readers share
    // the task's planted ground truth.
    DatasetConfig config = config_;
    if (config.task_seed == 0) {
        config.task_seed = config_.seed;
    }
    config.seed = config_.seed + 1 + static_cast<uint64_t>(reader_id) * 7919;
    SyntheticCtrDataset dataset(config);

    while (true) {
        Batch batch = dataset.NextBatch(options_.batch_size);
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [&] {
            return stopping_ || queue_.size() < options_.queue_capacity;
        });
        if (stopping_) {
            return;
        }
        queue_.push_back(std::move(batch));
        produced_++;
        lock.unlock();
        not_empty_.notify_one();
    }
}

Batch
ReaderTier::NextBatch()
{
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty(); });
    Batch batch = std::move(queue_.front());
    queue_.pop_front();
    consumed_++;
    lock.unlock();
    not_full_.notify_one();
    return batch;
}

uint64_t
ReaderTier::batches_produced() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return produced_;
}

}  // namespace neo::data
