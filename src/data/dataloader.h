/**
 * @file
 * Double-buffered data loader (Sec. 3.0.2 / 4.3): batch i+1 is generated
 * on the shared process-wide thread pool while batch i trains, the
 * CPU-side analogue of overlapping host-to-device input transfer with
 * compute.
 */
#pragma once

#include <future>
#include <memory>

#include "data/dataset.h"

namespace neo::data {

/** Prefetching wrapper around SyntheticCtrDataset. */
class DataLoader
{
  public:
    /**
     * @param config Dataset configuration.
     * @param batch_size Fixed batch size for every NextBatch() call.
     */
    DataLoader(const DatasetConfig& config, size_t batch_size);

    ~DataLoader();

    DataLoader(const DataLoader&) = delete;
    DataLoader& operator=(const DataLoader&) = delete;

    /**
     * Return the prefetched batch and kick off generation of the next one.
     * The stream is identical to calling the dataset directly.
     */
    Batch NextBatch();

    size_t batch_size() const { return batch_size_; }

  private:
    void StartPrefetch();

    std::unique_ptr<SyntheticCtrDataset> dataset_;
    size_t batch_size_;
    std::future<Batch> pending_;
};

}  // namespace neo::data
