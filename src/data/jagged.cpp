#include "data/jagged.h"

#include <numeric>

#include "common/logging.h"

namespace neo::data {

KeyedJagged
KeyedJagged::Empty(size_t num_tables, size_t batch)
{
    KeyedJagged kj;
    kj.batch = batch;
    kj.num_tables = num_tables;
    kj.lengths.assign(num_tables * batch, 0);
    kj.table_offsets.assign(num_tables + 1, 0);
    return kj;
}

void
KeyedJagged::RebuildOffsets()
{
    table_offsets.assign(num_tables + 1, 0);
    for (size_t t = 0; t < num_tables; t++) {
        size_t count = 0;
        for (size_t b = 0; b < batch; b++) {
            count += lengths[t * batch + b];
        }
        table_offsets[t + 1] = table_offsets[t] + count;
    }
}

std::span<const uint32_t>
KeyedJagged::LengthsForTable(size_t t) const
{
    NEO_CHECK(t < num_tables, "table index out of range");
    return {lengths.data() + t * batch, batch};
}

std::span<const int64_t>
KeyedJagged::IndicesForTable(size_t t) const
{
    NEO_CHECK(t < num_tables, "table index out of range");
    return {indices.data() + table_offsets[t],
            table_offsets[t + 1] - table_offsets[t]};
}

ops::TableInput
KeyedJagged::InputForTable(size_t t) const
{
    return {LengthsForTable(t), IndicesForTable(t)};
}

void
KeyedJagged::CheckConsistent() const
{
    NEO_CHECK(lengths.size() == num_tables * batch, "lengths size mismatch");
    NEO_CHECK(table_offsets.size() == num_tables + 1,
              "table_offsets size mismatch");
    NEO_CHECK(table_offsets.front() == 0, "offsets must start at 0");
    for (size_t t = 0; t < num_tables; t++) {
        size_t count = 0;
        for (size_t b = 0; b < batch; b++) {
            count += lengths[t * batch + b];
        }
        NEO_CHECK(table_offsets[t + 1] - table_offsets[t] == count,
                  "offsets inconsistent with lengths for table ", t);
    }
    NEO_CHECK(table_offsets.back() == indices.size(),
              "indices size inconsistent with offsets");
}

KeyedJagged
KeyedJagged::SliceBatch(size_t begin, size_t end) const
{
    NEO_REQUIRE(begin <= end && end <= batch, "bad batch slice");
    KeyedJagged out = Empty(num_tables, end - begin);
    for (size_t t = 0; t < num_tables; t++) {
        // Find the index offset of `begin` within this table.
        size_t skip = 0;
        for (size_t b = 0; b < begin; b++) {
            skip += lengths[t * batch + b];
        }
        size_t take = 0;
        for (size_t b = begin; b < end; b++) {
            const uint32_t len = lengths[t * batch + b];
            out.lengths[t * out.batch + (b - begin)] = len;
            take += len;
        }
        const size_t src = table_offsets[t] + skip;
        out.indices.insert(out.indices.end(), indices.begin() + src,
                           indices.begin() + src + take);
    }
    out.RebuildOffsets();
    return out;
}

KeyedJagged
KeyedJagged::SliceTable(size_t t) const
{
    NEO_REQUIRE(t < num_tables, "table index out of range");
    KeyedJagged out = Empty(1, batch);
    std::copy(lengths.begin() + t * batch, lengths.begin() + (t + 1) * batch,
              out.lengths.begin());
    const auto idx = IndicesForTable(t);
    out.indices.assign(idx.begin(), idx.end());
    out.RebuildOffsets();
    return out;
}

KeyedJagged
ConcatBatches(std::span<const KeyedJagged> pieces)
{
    NEO_REQUIRE(!pieces.empty(), "nothing to concatenate");
    const size_t num_tables = pieces[0].num_tables;
    size_t total_batch = 0;
    for (const auto& p : pieces) {
        NEO_REQUIRE(p.num_tables == num_tables,
                    "all pieces must have the same table set");
        total_batch += p.batch;
    }

    KeyedJagged out = KeyedJagged::Empty(num_tables, total_batch);
    // The incoming layout is (source, table, sample); we emit
    // (table, source, sample) so each table's data is contiguous.
    for (size_t t = 0; t < num_tables; t++) {
        size_t b_out = 0;
        for (const auto& p : pieces) {
            const auto lens = p.LengthsForTable(t);
            for (size_t b = 0; b < p.batch; b++) {
                out.lengths[t * total_batch + b_out + b] = lens[b];
            }
            const auto idx = p.IndicesForTable(t);
            out.indices.insert(out.indices.end(), idx.begin(), idx.end());
            b_out += p.batch;
        }
    }
    out.RebuildOffsets();
    out.CheckConsistent();
    return out;
}

Bucketized
BucketizeRows(const KeyedJagged& input, std::span<const int64_t> row_splits,
              bool rebase)
{
    NEO_REQUIRE(input.num_tables == 1, "BucketizeRows expects one table");
    NEO_REQUIRE(row_splits.size() >= 2, "need at least one bucket");
    const size_t num_buckets = row_splits.size() - 1;

    Bucketized result;
    result.buckets.reserve(num_buckets);
    for (size_t k = 0; k < num_buckets; k++) {
        result.buckets.push_back(KeyedJagged::Empty(1, input.batch));
    }

    const auto lens = input.LengthsForTable(0);
    const auto idx = input.IndicesForTable(0);
    size_t pos = 0;
    for (size_t b = 0; b < input.batch; b++) {
        for (uint32_t i = 0; i < lens[b]; i++) {
            const int64_t row = idx[pos++];
            // Locate the bucket; splits are sorted so binary search works,
            // but bucket counts are small and this is clearer.
            size_t k = 0;
            while (k + 1 < num_buckets && row >= row_splits[k + 1]) {
                k++;
            }
            NEO_CHECK(row >= row_splits[k] && row < row_splits[k + 1],
                      "index ", row, " outside all buckets");
            auto& bucket = result.buckets[k];
            bucket.lengths[b]++;
            bucket.indices.push_back(rebase ? row - row_splits[k] : row);
        }
    }
    for (auto& bucket : result.buckets) {
        bucket.RebuildOffsets();
    }
    return result;
}

}  // namespace neo::data
