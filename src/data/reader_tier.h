/**
 * @file
 * Disaggregated reader tier (Fig. 6): the paper feeds ZionEX trainers
 * from a separate data-ingestion service that streams from the network
 * store and pre-processes in parallel, so ingestion never bottlenecks
 * training. This module emulates that tier: N reader threads produce
 * batches into a bounded queue that the trainer drains.
 *
 * Batches from different readers interleave non-deterministically (as
 * with a real service); each reader owns a disjoint stream (distinct
 * seed), so no sample is duplicated.
 */
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "data/dataset.h"

namespace neo::data {

/** Reader-tier deployment shape. */
struct ReaderTierOptions {
    int num_readers = 2;
    size_t queue_capacity = 8;
    size_t batch_size = 128;
};

/** Multi-threaded batch producer with a bounded handoff queue. */
class ReaderTier
{
  public:
    /**
     * @param config Dataset template; reader r uses config.seed + r.
     * @param options Tier shape.
     */
    ReaderTier(const DatasetConfig& config,
               const ReaderTierOptions& options);

    /** Stops readers and drains the queue. */
    ~ReaderTier();

    ReaderTier(const ReaderTier&) = delete;
    ReaderTier& operator=(const ReaderTier&) = delete;

    /** Blocking pop of the next ready batch. */
    Batch NextBatch();

    /** Batches handed to the trainer so far. */
    uint64_t batches_consumed() const { return consumed_; }

    /** Batches produced by readers so far (>= consumed). */
    uint64_t batches_produced() const;

  private:
    void ReaderLoop(int reader_id);

    DatasetConfig config_;
    ReaderTierOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<Batch> queue_;
    bool stopping_ = false;
    uint64_t produced_ = 0;
    uint64_t consumed_ = 0;

    std::vector<std::thread> readers_;
};

}  // namespace neo::data
