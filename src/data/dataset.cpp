#include "data/dataset.h"

#include <cmath>

#include "common/logging.h"

namespace neo::data {

SyntheticCtrDataset::SyntheticCtrDataset(const DatasetConfig& config)
    : config_(config), rng_(config.seed)
{
    NEO_REQUIRE(!config_.features.empty(), "need at least one sparse feature");
    samplers_.reserve(config_.features.size());
    for (const auto& f : config_.features) {
        NEO_REQUIRE(f.rows > 0, "feature rows must be positive");
        samplers_.emplace_back(static_cast<uint64_t>(f.rows), f.zipf_s);
    }
    // Planted dense weights, deterministic from the TASK seed.
    Rng wrng(EffectiveTaskSeed() ^ 0xD15EA5Eull);
    dense_weights_.resize(config_.num_dense);
    for (auto& w : dense_weights_) {
        w = wrng.NextGaussian() * config_.signal_scale;
    }
}

uint64_t
SyntheticCtrDataset::EffectiveTaskSeed() const
{
    return config_.task_seed != 0 ? config_.task_seed : config_.seed;
}

float
SyntheticCtrDataset::PlantedRowWeight(size_t feature, int64_t row) const
{
    // Hash-derived Gaussian-ish weight: deterministic, no O(rows) table.
    SplitMix64 h((EffectiveTaskSeed() << 1) ^ (feature * 0x9E3779B9ull) ^
                 static_cast<uint64_t>(row));
    const uint64_t bits = h.Next();
    // Sum of four uniforms approximates a Gaussian well enough here.
    float acc = 0.0f;
    for (int i = 0; i < 4; i++) {
        acc += static_cast<float>((bits >> (i * 16)) & 0xFFFF) / 65535.0f;
    }
    return (acc - 2.0f) * config_.signal_scale;
}

Batch
SyntheticCtrDataset::NextBatch(size_t batch_size)
{
    NEO_REQUIRE(batch_size > 0, "batch must be non-empty");
    Batch batch;
    batch.dense = Matrix(batch_size, config_.num_dense);
    batch.sparse = KeyedJagged::Empty(config_.features.size(), batch_size);
    batch.labels.resize(batch_size);

    // Sample sparse indices table-major so the combined format builds
    // directly; remember per-sample planted contribution.
    std::vector<float> sparse_signal(batch_size, 0.0f);
    for (size_t t = 0; t < config_.features.size(); t++) {
        const auto& f = config_.features[t];
        for (size_t b = 0; b < batch_size; b++) {
            const uint32_t len =
                std::max<uint32_t>(1, rng_.NextPoisson(f.pooling));
            batch.sparse.lengths[t * batch_size + b] = len;
            float contrib = 0.0f;
            for (uint32_t i = 0; i < len; i++) {
                const int64_t row =
                    static_cast<int64_t>(samplers_[t].Sample(rng_));
                batch.sparse.indices.push_back(row);
                contrib += PlantedRowWeight(t, row);
            }
            // Average so pooling size doesn't dominate the logit scale.
            sparse_signal[b] += contrib / static_cast<float>(len);
        }
    }
    batch.sparse.RebuildOffsets();

    // Dense features and labels.
    for (size_t b = 0; b < batch_size; b++) {
        float logit = config_.logit_bias;
        for (size_t d = 0; d < config_.num_dense; d++) {
            const float x = rng_.NextGaussian();
            batch.dense(b, d) = x;
            logit += dense_weights_[d] * x;
        }
        logit += sparse_signal[b];
        logit += rng_.NextGaussian() * config_.noise_scale;
        const float p = 1.0f / (1.0f + std::exp(-logit));
        batch.labels[b] = rng_.NextFloat() < p ? 1.0f : 0.0f;
    }
    return batch;
}

}  // namespace neo::data
