/**
 * @file
 * Synthetic CTR dataset generator.
 *
 * The paper trains on petabytes of production click-through data that we
 * cannot ship; this generator produces a stream with the properties the
 * system actually exercises: Zipf-skewed categorical index distributions
 * (drives cache hit rates and row-update collision rates), Poisson pooling
 * lengths (drives jagged-input handling and load balance), and a planted
 * logistic ground truth (so normalized entropy measurably improves with
 * training, as in Fig. 10).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/jagged.h"
#include "tensor/matrix.h"

namespace neo::data {

/** Shape/distribution of one sparse (categorical) feature. */
struct SparseFeatureConfig {
    /** Hash size (number of rows in its embedding table). */
    int64_t rows = 1000;
    /** Mean pooling size (Poisson-distributed per sample, min 1). */
    double pooling = 10.0;
    /** Zipf skew exponent of index popularity (0 = uniform). */
    double zipf_s = 1.05;
};

/** Generator configuration. */
struct DatasetConfig {
    size_t num_dense = 16;
    std::vector<SparseFeatureConfig> features;
    /** Sampling-stream seed: which samples get drawn, in what order. */
    uint64_t seed = 42;
    /**
     * Ground-truth seed: the planted dense/row weights that define the
     * TASK. 0 means "same as seed". Parallel readers of one task must
     * share task_seed while using distinct stream seeds (see ReaderTier).
     */
    uint64_t task_seed = 0;
    /** Scale of planted per-row weights (signal strength). */
    float signal_scale = 0.6f;
    /** Additive Gaussian logit noise (label randomness). */
    float noise_scale = 0.8f;
    /** Base-rate offset added to the logit (negative => CTR < 50%). */
    float logit_bias = -1.0f;
};

/** One mini-batch: dense features, jagged sparse inputs and labels. */
struct Batch {
    Matrix dense;        // batch x num_dense
    KeyedJagged sparse;  // per-feature jagged inputs
    std::vector<float> labels;

    size_t size() const { return labels.size(); }
};

/**
 * Deterministic synthetic CTR stream. Two generators with the same config
 * produce the same batch sequence, so different worker counts can carve
 * identical global batches.
 */
class SyntheticCtrDataset
{
  public:
    explicit SyntheticCtrDataset(const DatasetConfig& config);

    /** Generate the next `batch_size` samples. */
    Batch NextBatch(size_t batch_size);

    const DatasetConfig& config() const { return config_; }

    /**
     * The planted "true" weight for (feature, row): what the embedding of
     * that row should learn to express. Exposed for tests.
     */
    float PlantedRowWeight(size_t feature, int64_t row) const;

  private:
    /** Resolved ground-truth seed (task_seed or seed). */
    uint64_t EffectiveTaskSeed() const;

    DatasetConfig config_;
    Rng rng_;
    std::vector<ZipfSampler> samplers_;
    std::vector<float> dense_weights_;
};

}  // namespace neo::data
