#include "data/dataloader.h"

#include "common/parallel_for.h"

namespace neo::data {

DataLoader::DataLoader(const DatasetConfig& config, size_t batch_size)
    : dataset_(std::make_unique<SyntheticCtrDataset>(config)),
      batch_size_(batch_size)
{
    StartPrefetch();
}

DataLoader::~DataLoader()
{
    if (pending_.valid()) {
        pending_.wait();  // join the in-flight generation before teardown
    }
}

void
DataLoader::StartPrefetch()
{
    // One generation in flight at a time on the shared process-wide pool
    // (no per-loader thread spawn); the dataset is only touched by that
    // task, so no locking is needed.
    pending_ = DefaultThreadPool().Submit([this] {
        return dataset_->NextBatch(batch_size_);
    });
}

Batch
DataLoader::NextBatch()
{
    Batch batch = pending_.get();
    StartPrefetch();
    return batch;
}

}  // namespace neo::data
