#include "data/dataloader.h"

namespace neo::data {

DataLoader::DataLoader(const DatasetConfig& config, size_t batch_size)
    : dataset_(std::make_unique<SyntheticCtrDataset>(config)),
      batch_size_(batch_size)
{
    StartPrefetch();
}

DataLoader::~DataLoader()
{
    if (pending_.valid()) {
        pending_.wait();  // join the in-flight generation before teardown
    }
}

void
DataLoader::StartPrefetch()
{
    // One async generation in flight at a time; the dataset is only touched
    // by that task, so no locking is needed.
    pending_ = std::async(std::launch::async, [this] {
        return dataset_->NextBatch(batch_size_);
    });
}

Batch
DataLoader::NextBatch()
{
    Batch batch = pending_.get();
    StartPrefetch();
    return batch;
}

}  // namespace neo::data
