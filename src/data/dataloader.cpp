#include "data/dataloader.h"

#include "common/parallel_for.h"
#include "obs/trace.h"

namespace neo::data {

DataLoader::DataLoader(const DatasetConfig& config, size_t batch_size)
    : dataset_(std::make_unique<SyntheticCtrDataset>(config)),
      batch_size_(batch_size)
{
    StartPrefetch();
}

DataLoader::~DataLoader()
{
    if (pending_.valid()) {
        pending_.wait();  // join the in-flight generation before teardown
    }
}

void
DataLoader::StartPrefetch()
{
    // One generation in flight at a time on the shared process-wide pool
    // (no per-loader thread spawn); the dataset is only touched by that
    // task, so no locking is needed.
    pending_ = DefaultThreadPool().Submit([this] {
        // Runs on a shared-pool thread: shows under the pool's process in
        // the trace; the consumer-side stall is "next_batch_wait" below.
        NEO_TRACE_SPAN("data_prefetch", "data");
        return dataset_->NextBatch(batch_size_);
    });
}

Batch
DataLoader::NextBatch()
{
    Batch batch = [&] {
        NEO_TRACE_SPAN("next_batch_wait", "data");
        return pending_.get();
    }();
    StartPrefetch();
    return batch;
}

}  // namespace neo::data
