/**
 * @file
 * Kernel tier selection. The per-tier tables live in their own TUs
 * (compiled with the matching -m flags); this TU is built without any
 * SIMD flags and only ever takes the address of a tier's table when the
 * CPUID probe says the host can execute it, so the binary stays runnable
 * on the narrowest supported machine.
 */
#include <atomic>
#include <cstdlib>
#include <string>

#include "common/cpu_features.h"
#include "common/logging.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"

namespace neo::kernels {

namespace detail_tiers {

const KernelTable& ScalarTable();
#if defined(NEO_KERNELS_HAVE_SSE)
const KernelTable& SseTable();
#endif
#if defined(NEO_KERNELS_HAVE_AVX2)
const KernelTable& Avx2Table();
#endif
#if defined(NEO_KERNELS_HAVE_AVX512)
const KernelTable& Avx512Table();
#endif

}  // namespace detail_tiers

namespace {

/** Compiled-in + runtime-executable check for one tier. */
bool
TierSupported(Tier tier)
{
    const CpuFeatures& host = CpuFeatures::Host();
    switch (tier) {
        case Tier::kScalar:
            return true;
        case Tier::kSse:
#if defined(NEO_KERNELS_HAVE_SSE)
            // VEX-encoded 128-bit kernels: need AVX+FMA (and F16C for
            // the half converts) despite the 128-bit width.
            return host.avx && host.fma && host.f16c;
#else
            return false;
#endif
        case Tier::kAvx2:
#if defined(NEO_KERNELS_HAVE_AVX2)
            return host.avx2 && host.fma && host.f16c;
#else
            return false;
#endif
        case Tier::kAvx512:
#if defined(NEO_KERNELS_HAVE_AVX512)
            return host.avx512f && host.fma && host.f16c;
#else
            return false;
#endif
    }
    return false;
}

const KernelTable&
TableForSupported(Tier tier)
{
    switch (tier) {
#if defined(NEO_KERNELS_HAVE_SSE)
        case Tier::kSse:
            return detail_tiers::SseTable();
#endif
#if defined(NEO_KERNELS_HAVE_AVX2)
        case Tier::kAvx2:
            return detail_tiers::Avx2Table();
#endif
#if defined(NEO_KERNELS_HAVE_AVX512)
        case Tier::kAvx512:
            return detail_tiers::Avx512Table();
#endif
        default:
            return detail_tiers::ScalarTable();
    }
}

void
PublishTierGauge(Tier tier)
{
    obs::MetricsRegistry::Get()
        .GetGauge("neo.kernels.tier")
        .Set(static_cast<double>(tier));
}

/** Widest supported tier, after the NEO_KERNEL_TIER override if set. */
Tier
ResolveTier()
{
    if (const char* env = std::getenv("NEO_KERNEL_TIER")) {
        const std::string want(env);
        Tier tier = Tier::kScalar;
        if (want == "scalar") {
            tier = Tier::kScalar;
        } else if (want == "sse") {
            tier = Tier::kSse;
        } else if (want == "avx2") {
            tier = Tier::kAvx2;
        } else if (want == "avx512") {
            tier = Tier::kAvx512;
        } else {
            NEO_FATAL("NEO_KERNEL_TIER='", want,
                      "' is not one of scalar|sse|avx2|avx512");
        }
        if (!TierSupported(tier)) {
            NEO_FATAL("NEO_KERNEL_TIER=", want,
                      " requested but this build/host cannot execute that "
                      "tier (host: ",
                      CpuFeatures::Host().ToString(), ")");
        }
        return tier;
    }
    for (Tier tier :
         {Tier::kAvx512, Tier::kAvx2, Tier::kSse, Tier::kScalar}) {
        if (TierSupported(tier)) {
            return tier;
        }
    }
    return Tier::kScalar;
}

std::atomic<const KernelTable*> g_active{nullptr};

}  // namespace

const char*
TierName(Tier tier)
{
    switch (tier) {
        case Tier::kScalar:
            return "scalar";
        case Tier::kSse:
            return "sse";
        case Tier::kAvx2:
            return "avx2";
        case Tier::kAvx512:
            return "avx512";
    }
    return "unknown";
}

const KernelTable&
Active()
{
    const KernelTable* table = g_active.load(std::memory_order_acquire);
    if (table == nullptr) {
        const KernelTable& resolved = TableForSupported(ResolveTier());
        const KernelTable* expected = nullptr;
        // Several threads can race the first resolve; they all compute
        // the same answer, so whichever publishes first wins.
        if (g_active.compare_exchange_strong(expected, &resolved,
                                             std::memory_order_acq_rel)) {
            PublishTierGauge(resolved.tier);
        }
        table = g_active.load(std::memory_order_acquire);
    }
    return *table;
}

Tier
ActiveTier()
{
    return Active().tier;
}

std::vector<Tier>
SupportedTiers()
{
    std::vector<Tier> tiers;
    for (Tier tier :
         {Tier::kScalar, Tier::kSse, Tier::kAvx2, Tier::kAvx512}) {
        if (TierSupported(tier)) {
            tiers.push_back(tier);
        }
    }
    return tiers;
}

void
SetTier(Tier tier)
{
    NEO_CHECK(TierSupported(tier), "SetTier(", TierName(tier),
              "): tier not executable on this build/host (",
              CpuFeatures::Host().ToString(), ")");
    g_active.store(&TableForSupported(tier), std::memory_order_release);
    PublishTierGauge(tier);
}

const KernelTable&
TableFor(Tier tier)
{
    NEO_CHECK(TierSupported(tier), "TableFor(", TierName(tier),
              "): tier not executable on this build/host (",
              CpuFeatures::Host().ToString(), ")");
    return TableForSupported(tier);
}

}  // namespace neo::kernels
