/**
 * @file
 * AVX-512F tier: 512-bit kernels, one lane per output element, canonical
 * chains (see kernels.h). Restricted to the F subset — no BW/DQ/VL
 * instructions — so it runs on every AVX-512 host; 16-bit tails fall back
 * to the identical scalar chain instead of masked word loads. Compiled
 * with -mavx512f -mfma -mf16c -ffp-contract=off.
 */
#include <immintrin.h>

#include <cmath>

#include "common/float_types.h"
#include "kernels/kernels.h"

namespace neo::kernels {

namespace {

inline __mmask16
LaneMask(size_t rem)
{
    return static_cast<__mmask16>((1u << rem) - 1u);
}

/** Upper 256 bits of a zmm without AVX512DQ's extractf32x8. */
inline __m256
UpperHalf(__m512 v)
{
    return _mm256_castpd_ps(
        _mm512_extractf64x4_pd(_mm512_castps_pd(v), 1));
}

// ------------------------------------------------------------------ GEMM

void
GemmTileAvx512(size_t k, const float* a_panel, const float* b_panel,
               float* c, size_t ldc, size_t mr, size_t nr)
{
    // 6x16 register tile: one zmm accumulator per row; lane j of row r
    // owns the (r, j) chain.
    __m512 acc[kMr];
    for (size_t r = 0; r < kMr; r++) {
        acc[r] = _mm512_setzero_ps();
    }
    for (size_t kk = 0; kk < k; kk++) {
        const __m512 b = _mm512_loadu_ps(b_panel + kk * kNr);
        const float* a = a_panel + kk * kMr;
        for (size_t r = 0; r < kMr; r++) {
            acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(a[r]), b, acc[r]);
        }
    }
    if (nr == kNr) {
        for (size_t r = 0; r < mr; r++) {
            float* crow = c + r * ldc;
            _mm512_storeu_ps(crow,
                             _mm512_add_ps(_mm512_loadu_ps(crow), acc[r]));
        }
        return;
    }
    const __mmask16 mask = LaneMask(nr);
    for (size_t r = 0; r < mr; r++) {
        float* crow = c + r * ldc;
        const __m512 cv = _mm512_maskz_loadu_ps(mask, crow);
        _mm512_mask_storeu_ps(crow, mask, _mm512_add_ps(cv, acc[r]));
    }
}

// --------------------------------------------------------------- pooling

void
PoolRowsF32Avx512(const float* rows, size_t dim, const int64_t* indices,
                  size_t count, float* out)
{
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
        __m512 acc = _mm512_loadu_ps(out + d);
        for (size_t i = 0; i < count; i++) {
            acc = _mm512_add_ps(
                acc, _mm512_loadu_ps(
                         rows + static_cast<size_t>(indices[i]) * dim + d));
        }
        _mm512_storeu_ps(out + d, acc);
    }
    const size_t rem = dim - d;
    if (rem) {
        const __mmask16 mask = LaneMask(rem);
        __m512 acc = _mm512_maskz_loadu_ps(mask, out + d);
        for (size_t i = 0; i < count; i++) {
            acc = _mm512_add_ps(
                acc,
                _mm512_maskz_loadu_ps(
                    mask,
                    rows + static_cast<size_t>(indices[i]) * dim + d));
        }
        _mm512_mask_storeu_ps(out + d, mask, acc);
    }
}

void
PoolRowsF16Avx512(const uint16_t* rows, size_t dim, const int64_t* indices,
                  size_t count, float* out)
{
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
        __m512 acc = _mm512_loadu_ps(out + d);
        for (size_t i = 0; i < count; i++) {
            const uint16_t* row =
                rows + static_cast<size_t>(indices[i]) * dim + d;
            const __m256i h = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(row));
            acc = _mm512_add_ps(acc, _mm512_cvtph_ps(h));
        }
        _mm512_storeu_ps(out + d, acc);
    }
    // Word-granular masked loads need AVX512BW; run the identical scalar
    // chain for the sub-16 tail instead.
    for (; d < dim; d++) {
        float acc = out[d];
        for (size_t i = 0; i < count; i++) {
            acc += detail::HalfBitsToFloat(
                rows[static_cast<size_t>(indices[i]) * dim + d]);
        }
        out[d] = acc;
    }
}

// ----------------------------------------------------- elementwise math

void
AddF32Avx512(const float* src, float* dst, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        _mm512_storeu_ps(dst + i, _mm512_add_ps(_mm512_loadu_ps(dst + i),
                                                _mm512_loadu_ps(src + i)));
    }
    const size_t rem = n - i;
    if (rem) {
        const __mmask16 mask = LaneMask(rem);
        const __m512 sum =
            _mm512_add_ps(_mm512_maskz_loadu_ps(mask, dst + i),
                          _mm512_maskz_loadu_ps(mask, src + i));
        _mm512_mask_storeu_ps(dst + i, mask, sum);
    }
}

void
AxpyF32Avx512(float w, const float* src, float* dst, size_t n)
{
    const __m512 wv = _mm512_set1_ps(w);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        // mul and add rounded separately (canonical; no fma here).
        const __m512 prod = _mm512_mul_ps(wv, _mm512_loadu_ps(src + i));
        _mm512_storeu_ps(dst + i,
                         _mm512_add_ps(_mm512_loadu_ps(dst + i), prod));
    }
    const size_t rem = n - i;
    if (rem) {
        const __mmask16 mask = LaneMask(rem);
        const __m512 prod =
            _mm512_mul_ps(wv, _mm512_maskz_loadu_ps(mask, src + i));
        const __m512 sum =
            _mm512_add_ps(_mm512_maskz_loadu_ps(mask, dst + i), prod);
        _mm512_mask_storeu_ps(dst + i, mask, sum);
    }
}

void
AdagradUpdateF32Avx512(float lr, float eps, const float* g, float* state,
                       float* w, size_t n)
{
    const __m512 lrv = _mm512_set1_ps(lr);
    const __m512 epsv = _mm512_set1_ps(eps);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 gv = _mm512_loadu_ps(g + i);
        const __m512 sv = _mm512_add_ps(_mm512_loadu_ps(state + i),
                                        _mm512_mul_ps(gv, gv));
        _mm512_storeu_ps(state + i, sv);
        const __m512 num = _mm512_mul_ps(lrv, gv);
        const __m512 den = _mm512_add_ps(_mm512_sqrt_ps(sv), epsv);
        _mm512_storeu_ps(w + i, _mm512_sub_ps(_mm512_loadu_ps(w + i),
                                              _mm512_div_ps(num, den)));
    }
    for (; i < n; i++) {
        state[i] += g[i] * g[i];
        w[i] -= (lr * g[i]) / (std::sqrt(state[i]) + eps);
    }
}

float
SumSquaresF32Avx512(const float* x, size_t n)
{
    // One zmm IS the width-16 strided accumulator array. Masked tail
    // lanes contribute +0.0f squares — exact for the nonnegative
    // accumulators (DESIGN.md §4h).
    __m512 acc = _mm512_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 xv = _mm512_loadu_ps(x + i);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(xv, xv));
    }
    const size_t rem = n - i;
    if (rem) {
        const __m512 xv = _mm512_maskz_loadu_ps(LaneMask(rem), x + i);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(xv, xv));
    }
    // Fixed fold tree: acc[l]+=acc[l+8]; +4; +2; acc[0]+acc[1].
    const __m256 s8 = _mm256_add_ps(_mm512_castps512_ps256(acc),
                                    UpperHalf(acc));
    const __m128 s4 = _mm_add_ps(_mm256_castps256_ps128(s8),
                                 _mm256_extractf128_ps(s8, 1));
    const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
    alignas(16) float lanes[4];
    _mm_store_ps(lanes, s2);
    return lanes[0] + lanes[1];
}

// ------------------------------------------------------------- converts

void
DequantF16Avx512(const uint16_t* in, float* out, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i h =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
        _mm512_storeu_ps(out + i, _mm512_cvtph_ps(h));
    }
    for (; i < n; i++) {
        out[i] = detail::HalfBitsToFloat(in[i]);
    }
}

void
QuantF16Avx512(const float* in, uint16_t* out, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i h = _mm512_cvtps_ph(
            _mm512_loadu_ps(in + i),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
    }
    for (; i < n; i++) {
        out[i] = detail::FloatToHalfBits(in[i]);
    }
}

void
DequantBf16Avx512(const uint16_t* in, float* out, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i h =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
        const __m512i wide =
            _mm512_slli_epi32(_mm512_cvtepu16_epi32(h), 16);
        _mm512_storeu_ps(out + i, _mm512_castsi512_ps(wide));
    }
    for (; i < n; i++) {
        out[i] = detail::BFloat16BitsToFloat(in[i]);
    }
}

void
QuantBf16Avx512(const float* in, uint16_t* out, size_t n)
{
    // Integer emulation of the exact FloatToBFloat16Bits formula; see the
    // AVX2 tier for the derivation.
    const __m512i exp_mask = _mm512_set1_epi32(0x7F800000);
    const __m512i mant_mask = _mm512_set1_epi32(0x007FFFFF);
    const __m512i rnd_base = _mm512_set1_epi32(0x7FFF);
    const __m512i one = _mm512_set1_epi32(1);
    const __m512i nan_or = _mm512_set1_epi32(0x40);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512i u = _mm512_castps_si512(_mm512_loadu_ps(in + i));
        const __m512i shifted = _mm512_srli_epi32(u, 16);
        const __mmask16 is_exp_max = _mm512_cmpeq_epi32_mask(
            _mm512_and_si512(u, exp_mask), exp_mask);
        const __mmask16 mant_nonzero = _mm512_cmpneq_epi32_mask(
            _mm512_and_si512(u, mant_mask), _mm512_setzero_si512());
        const __mmask16 is_nan = is_exp_max & mant_nonzero;
        const __m512i nan_val = _mm512_or_si512(shifted, nan_or);
        const __m512i round =
            _mm512_add_epi32(rnd_base, _mm512_and_si512(shifted, one));
        const __m512i rounded =
            _mm512_srli_epi32(_mm512_add_epi32(u, round), 16);
        const __m512i sel =
            _mm512_mask_blend_epi32(is_nan, rounded, nan_val);
        const __m256i narrow = _mm512_cvtepi32_epi16(sel);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), narrow);
    }
    for (; i < n; i++) {
        out[i] = detail::FloatToBFloat16Bits(in[i]);
    }
}

}  // namespace

namespace detail_tiers {

const KernelTable&
Avx512Table()
{
    static const KernelTable table = {
        Tier::kAvx512,          GemmTileAvx512,      PoolRowsF32Avx512,
        PoolRowsF16Avx512,      AddF32Avx512,        AxpyF32Avx512,
        AdagradUpdateF32Avx512, SumSquaresF32Avx512, DequantF16Avx512,
        QuantF16Avx512,         DequantBf16Avx512,   QuantBf16Avx512,
    };
    return table;
}

}  // namespace detail_tiers

}  // namespace neo::kernels
