/**
 * @file
 * 128-bit tier: the canonical chains (see kernels.h) executed four lanes
 * at a time. Built with -mavx -mfma -mf16c, so the encodings are VEX and
 * the tier is runtime-gated on AVX+FMA — on a genuine SSE4.2-only host
 * the dispatcher falls back to scalar, whose std::fma carries
 * correctness. The tier earns its keep as the narrow-width cross-check
 * in the bitwise-identity suite and as the widest option on AVX-only
 * parts. Compiled with -ffp-contract=off like every kernel TU.
 */
#include <immintrin.h>

#include <cmath>

#include "common/float_types.h"
#include "kernels/kernels.h"

namespace neo::kernels {

namespace {

/** maskload mask covering the first `rem` (< 4) lanes. */
inline __m128i
TailMask4(size_t rem)
{
    alignas(16) static const int32_t kMaskTable[8] = {-1, -1, -1, -1,
                                                      0,  0,  0,  0};
    return _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kMaskTable + 4 - rem));
}

// ------------------------------------------------------------------ GEMM

void
GemmTileSse(size_t k, const float* a_panel, const float* b_panel, float* c,
            size_t ldc, size_t mr, size_t nr)
{
    // The 6x16 tile exceeds the xmm register file, so run the k loop once
    // per 8-lane column block: 6 rows x 2 xmm accumulators per pass. Lane
    // chains are unchanged — each output element still owns one
    // accumulator fed in ascending k.
    alignas(64) float tile[kMr * kNr];
    for (size_t lane0 = 0; lane0 < nr; lane0 += 8) {
        __m128 acc[kMr][2];
        for (size_t r = 0; r < kMr; r++) {
            acc[r][0] = _mm_setzero_ps();
            acc[r][1] = _mm_setzero_ps();
        }
        for (size_t kk = 0; kk < k; kk++) {
            const float* b = b_panel + kk * kNr + lane0;
            const __m128 b0 = _mm_loadu_ps(b);
            const __m128 b1 = _mm_loadu_ps(b + 4);
            const float* a = a_panel + kk * kMr;
            for (size_t r = 0; r < kMr; r++) {
                const __m128 av = _mm_broadcast_ss(a + r);
                acc[r][0] = _mm_fmadd_ps(av, b0, acc[r][0]);
                acc[r][1] = _mm_fmadd_ps(av, b1, acc[r][1]);
            }
        }
        for (size_t r = 0; r < kMr; r++) {
            _mm_store_ps(tile + r * kNr + lane0, acc[r][0]);
            _mm_store_ps(tile + r * kNr + lane0 + 4, acc[r][1]);
        }
    }
    for (size_t r = 0; r < mr; r++) {
        float* crow = c + r * ldc;
        const float* trow = tile + r * kNr;
        size_t j = 0;
        for (; j + 4 <= nr; j += 4) {
            _mm_storeu_ps(crow + j, _mm_add_ps(_mm_loadu_ps(crow + j),
                                               _mm_loadu_ps(trow + j)));
        }
        for (; j < nr; j++) {
            crow[j] += trow[j];
        }
    }
}

// --------------------------------------------------------------- pooling

void
PoolRowsF32Sse(const float* rows, size_t dim, const int64_t* indices,
               size_t count, float* out)
{
    size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        __m128 acc0 = _mm_loadu_ps(out + d);
        __m128 acc1 = _mm_loadu_ps(out + d + 4);
        for (size_t i = 0; i < count; i++) {
            const float* row =
                rows + static_cast<size_t>(indices[i]) * dim + d;
            acc0 = _mm_add_ps(acc0, _mm_loadu_ps(row));
            acc1 = _mm_add_ps(acc1, _mm_loadu_ps(row + 4));
        }
        _mm_storeu_ps(out + d, acc0);
        _mm_storeu_ps(out + d + 4, acc1);
    }
    if (d + 4 <= dim) {
        __m128 acc = _mm_loadu_ps(out + d);
        for (size_t i = 0; i < count; i++) {
            acc = _mm_add_ps(
                acc, _mm_loadu_ps(
                         rows + static_cast<size_t>(indices[i]) * dim + d));
        }
        _mm_storeu_ps(out + d, acc);
        d += 4;
    }
    for (; d < dim; d++) {
        float acc = out[d];
        for (size_t i = 0; i < count; i++) {
            acc += rows[static_cast<size_t>(indices[i]) * dim + d];
        }
        out[d] = acc;
    }
}

void
PoolRowsF16Sse(const uint16_t* rows, size_t dim, const int64_t* indices,
               size_t count, float* out)
{
    size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        __m128 acc0 = _mm_loadu_ps(out + d);
        __m128 acc1 = _mm_loadu_ps(out + d + 4);
        for (size_t i = 0; i < count; i++) {
            const uint16_t* row =
                rows + static_cast<size_t>(indices[i]) * dim + d;
            const __m128i h =
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
            acc0 = _mm_add_ps(acc0, _mm_cvtph_ps(h));
            acc1 = _mm_add_ps(acc1, _mm_cvtph_ps(_mm_srli_si128(h, 8)));
        }
        _mm_storeu_ps(out + d, acc0);
        _mm_storeu_ps(out + d + 4, acc1);
    }
    if (d + 4 <= dim) {
        __m128 acc = _mm_loadu_ps(out + d);
        for (size_t i = 0; i < count; i++) {
            const uint16_t* row =
                rows + static_cast<size_t>(indices[i]) * dim + d;
            acc = _mm_add_ps(
                acc, _mm_cvtph_ps(_mm_loadl_epi64(
                         reinterpret_cast<const __m128i*>(row))));
        }
        _mm_storeu_ps(out + d, acc);
        d += 4;
    }
    for (; d < dim; d++) {
        float acc = out[d];
        for (size_t i = 0; i < count; i++) {
            acc += detail::HalfBitsToFloat(
                rows[static_cast<size_t>(indices[i]) * dim + d]);
        }
        out[d] = acc;
    }
}

// ----------------------------------------------------- elementwise math

void
AddF32Sse(const float* src, float* dst, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        _mm_storeu_ps(dst + i, _mm_add_ps(_mm_loadu_ps(dst + i),
                                          _mm_loadu_ps(src + i)));
    }
    for (; i < n; i++) {
        dst[i] += src[i];
    }
}

void
AxpyF32Sse(float w, const float* src, float* dst, size_t n)
{
    const __m128 wv = _mm_set1_ps(w);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // mul and add rounded separately (canonical; no fma here).
        const __m128 prod = _mm_mul_ps(wv, _mm_loadu_ps(src + i));
        _mm_storeu_ps(dst + i, _mm_add_ps(_mm_loadu_ps(dst + i), prod));
    }
    for (; i < n; i++) {
        dst[i] += w * src[i];
    }
}

void
AdagradUpdateF32Sse(float lr, float eps, const float* g, float* state,
                    float* w, size_t n)
{
    const __m128 lrv = _mm_set1_ps(lr);
    const __m128 epsv = _mm_set1_ps(eps);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 gv = _mm_loadu_ps(g + i);
        const __m128 sv =
            _mm_add_ps(_mm_loadu_ps(state + i), _mm_mul_ps(gv, gv));
        _mm_storeu_ps(state + i, sv);
        const __m128 num = _mm_mul_ps(lrv, gv);
        const __m128 den = _mm_add_ps(_mm_sqrt_ps(sv), epsv);
        _mm_storeu_ps(
            w + i, _mm_sub_ps(_mm_loadu_ps(w + i), _mm_div_ps(num, den)));
    }
    for (; i < n; i++) {
        state[i] += g[i] * g[i];
        w[i] -= (lr * g[i]) / (std::sqrt(state[i]) + eps);
    }
}

float
SumSquaresF32Sse(const float* x, size_t n)
{
    // Four xmm registers hold the width-16 strided accumulator array:
    // acc[g] covers lanes [4g, 4g+4). Masked tail lanes contribute +0.0f
    // squares — exact for the nonnegative accumulators (DESIGN.md §4h).
    __m128 acc[4] = {_mm_setzero_ps(), _mm_setzero_ps(), _mm_setzero_ps(),
                     _mm_setzero_ps()};
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        for (size_t g = 0; g < 4; g++) {
            const __m128 xv = _mm_loadu_ps(x + i + 4 * g);
            acc[g] = _mm_add_ps(acc[g], _mm_mul_ps(xv, xv));
        }
    }
    size_t rem = n - i;
    for (size_t g = 0; rem > 0; g++, rem -= (rem < 4 ? rem : 4)) {
        const __m128 xv = rem >= 4
                              ? _mm_loadu_ps(x + i + 4 * g)
                              : _mm_maskload_ps(x + i + 4 * g,
                                                TailMask4(rem));
        acc[g] = _mm_add_ps(acc[g], _mm_mul_ps(xv, xv));
    }
    // Fixed fold tree: acc[l]+=acc[l+8]; +4; +2; acc[0]+acc[1].
    const __m128 s4 =
        _mm_add_ps(_mm_add_ps(acc[0], acc[2]), _mm_add_ps(acc[1], acc[3]));
    const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
    alignas(16) float lanes[4];
    _mm_store_ps(lanes, s2);
    return lanes[0] + lanes[1];
}

// ------------------------------------------------------------- converts

void
DequantF16Sse(const uint16_t* in, float* out, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i h =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + i));
        _mm_storeu_ps(out + i, _mm_cvtph_ps(h));
    }
    for (; i < n; i++) {
        out[i] = detail::HalfBitsToFloat(in[i]);
    }
}

void
QuantF16Sse(const float* in, uint16_t* out, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i h = _mm_cvtps_ph(
            _mm_loadu_ps(in + i),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), h);
    }
    for (; i < n; i++) {
        out[i] = detail::FloatToHalfBits(in[i]);
    }
}

void
DequantBf16Sse(const uint16_t* in, float* out, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i h =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + i));
        const __m128i wide = _mm_slli_epi32(_mm_cvtepu16_epi32(h), 16);
        _mm_storeu_ps(out + i, _mm_castsi128_ps(wide));
    }
    for (; i < n; i++) {
        out[i] = detail::BFloat16BitsToFloat(in[i]);
    }
}

void
QuantBf16Sse(const float* in, uint16_t* out, size_t n)
{
    // Integer emulation of the exact FloatToBFloat16Bits formula; see the
    // AVX2 tier for the derivation.
    const __m128i exp_mask = _mm_set1_epi32(0x7F800000);
    const __m128i mant_mask = _mm_set1_epi32(0x007FFFFF);
    const __m128i rnd_base = _mm_set1_epi32(0x7FFF);
    const __m128i one = _mm_set1_epi32(1);
    const __m128i nan_or = _mm_set1_epi32(0x40);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i u = _mm_castps_si128(_mm_loadu_ps(in + i));
        const __m128i shifted = _mm_srli_epi32(u, 16);
        const __m128i is_exp_max =
            _mm_cmpeq_epi32(_mm_and_si128(u, exp_mask), exp_mask);
        const __m128i mant_zero = _mm_cmpeq_epi32(
            _mm_and_si128(u, mant_mask), _mm_setzero_si128());
        const __m128i is_nan = _mm_andnot_si128(mant_zero, is_exp_max);
        const __m128i nan_val = _mm_or_si128(shifted, nan_or);
        const __m128i round =
            _mm_add_epi32(rnd_base, _mm_and_si128(shifted, one));
        const __m128i rounded =
            _mm_srli_epi32(_mm_add_epi32(u, round), 16);
        const __m128i sel = _mm_blendv_epi8(rounded, nan_val, is_nan);
        // Values fit in 16 bits, so unsigned-saturating pack is exact.
        _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i),
                         _mm_packus_epi32(sel, sel));
    }
    for (; i < n; i++) {
        out[i] = detail::FloatToBFloat16Bits(in[i]);
    }
}

}  // namespace

namespace detail_tiers {

const KernelTable&
SseTable()
{
    static const KernelTable table = {
        Tier::kSse,          GemmTileSse,       PoolRowsF32Sse,
        PoolRowsF16Sse,      AddF32Sse,         AxpyF32Sse,
        AdagradUpdateF32Sse, SumSquaresF32Sse,  DequantF16Sse,
        QuantF16Sse,         DequantBf16Sse,    QuantBf16Sse,
    };
    return table;
}

}  // namespace detail_tiers

}  // namespace neo::kernels
