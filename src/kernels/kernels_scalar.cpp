/**
 * @file
 * Scalar reference tier: the canonical accumulation schedule spelled out
 * in portable C++. Every vector tier must reproduce these results
 * bit-for-bit (tests/test_kernels.cpp). This TU compiles with
 * -ffp-contract=off so the separately-rounded mul+add schedules cannot be
 * silently contracted into fused ops; where the canonical schedule *is*
 * fused (the GEMM tile), std::fma spells it explicitly.
 */
#include <cmath>

#include "common/float_types.h"
#include "kernels/kernels.h"

namespace neo::kernels {

namespace {

void
GemmTileScalar(size_t k, const float* a_panel, const float* b_panel,
               float* c, size_t ldc, size_t mr, size_t nr)
{
    // One accumulator per output element, fused multiply-adds in
    // ascending-k order, one final add into C — exactly the chains the
    // vector tiers run, one lane per (r, j).
    for (size_t r = 0; r < mr; r++) {
        for (size_t j = 0; j < nr; j++) {
            float acc = 0.0f;
            for (size_t kk = 0; kk < k; kk++) {
                acc = std::fma(a_panel[kk * kMr + r], b_panel[kk * kNr + j],
                               acc);
            }
            c[r * ldc + j] += acc;
        }
    }
}

void
PoolRowsF32Scalar(const float* rows, size_t dim, const int64_t* indices,
                  size_t count, float* out)
{
    for (size_t i = 0; i < count; i++) {
        const float* row = rows + static_cast<size_t>(indices[i]) * dim;
        for (size_t d = 0; d < dim; d++) {
            out[d] += row[d];
        }
    }
}

void
PoolRowsF16Scalar(const uint16_t* rows, size_t dim, const int64_t* indices,
                  size_t count, float* out)
{
    for (size_t i = 0; i < count; i++) {
        const uint16_t* row = rows + static_cast<size_t>(indices[i]) * dim;
        for (size_t d = 0; d < dim; d++) {
            out[d] += detail::HalfBitsToFloat(row[d]);
        }
    }
}

void
AddF32Scalar(const float* src, float* dst, size_t n)
{
    for (size_t i = 0; i < n; i++) {
        dst[i] += src[i];
    }
}

void
AxpyF32Scalar(float w, const float* src, float* dst, size_t n)
{
    for (size_t i = 0; i < n; i++) {
        dst[i] += w * src[i];
    }
}

void
AdagradUpdateF32Scalar(float lr, float eps, const float* g, float* state,
                       float* w, size_t n)
{
    for (size_t i = 0; i < n; i++) {
        state[i] += g[i] * g[i];
        w[i] -= (lr * g[i]) / (std::sqrt(state[i]) + eps);
    }
}

float
SumSquaresF32Scalar(const float* x, size_t n)
{
    // Width-16 strided accumulators: element i lands in lane i%16, then
    // the lanes fold by the fixed tree. This is the schedule a 16-lane
    // vector runs natively; 4- and 8-lane tiers split the lane array
    // across registers without changing any chain.
    float acc[kReduceLanes] = {};
    for (size_t i = 0; i < n; i++) {
        const size_t lane = i % kReduceLanes;
        acc[lane] += x[i] * x[i];
    }
    for (size_t l = 0; l < 8; l++) {
        acc[l] += acc[l + 8];
    }
    for (size_t l = 0; l < 4; l++) {
        acc[l] += acc[l + 4];
    }
    acc[0] += acc[2];
    acc[1] += acc[3];
    return acc[0] + acc[1];
}

void
DequantF16Scalar(const uint16_t* in, float* out, size_t n)
{
    for (size_t i = 0; i < n; i++) {
        out[i] = detail::HalfBitsToFloat(in[i]);
    }
}

void
QuantF16Scalar(const float* in, uint16_t* out, size_t n)
{
    for (size_t i = 0; i < n; i++) {
        out[i] = detail::FloatToHalfBits(in[i]);
    }
}

void
DequantBf16Scalar(const uint16_t* in, float* out, size_t n)
{
    for (size_t i = 0; i < n; i++) {
        out[i] = detail::BFloat16BitsToFloat(in[i]);
    }
}

void
QuantBf16Scalar(const float* in, uint16_t* out, size_t n)
{
    for (size_t i = 0; i < n; i++) {
        out[i] = detail::FloatToBFloat16Bits(in[i]);
    }
}

}  // namespace

namespace detail_tiers {

const KernelTable&
ScalarTable()
{
    static const KernelTable table = {
        Tier::kScalar,        GemmTileScalar,    PoolRowsF32Scalar,
        PoolRowsF16Scalar,    AddF32Scalar,      AxpyF32Scalar,
        AdagradUpdateF32Scalar, SumSquaresF32Scalar, DequantF16Scalar,
        QuantF16Scalar,       DequantBf16Scalar, QuantBf16Scalar,
    };
    return table;
}

}  // namespace detail_tiers

}  // namespace neo::kernels
