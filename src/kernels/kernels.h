/**
 * @file
 * Runtime-dispatched SIMD microkernels for the two hot loops of every
 * measured step — MLP GEMM and fused pooled embedding lookup — in the
 * style of onnxruntime's core/mlas: a CPU-feature probe picks the widest
 * compiled-in tier at first use (overridable via NEO_KERNEL_TIER), and
 * every caller goes through one function-pointer table.
 *
 * Determinism contract (DESIGN.md §4h): bitwise identity across tiers is
 * achieved *by construction*, not tolerance. Every kernel implements one
 * canonical accumulation schedule, fixed independently of the executing
 * tier:
 *
 *  - GEMM tile: each output element owns a single accumulator that
 *    receives fused multiply-adds (single IEEE rounding per term) in
 *    ascending-k order, then is added into C once. Vector tiers assign
 *    one lane per output element (lanes never reduce against each other);
 *    the scalar tier replays the same chains with std::fma.
 *  - Pooling / axpy / optimizer updates: per-element chains in occurrence
 *    order using separately rounded multiply and add (no contraction;
 *    these TUs compile with -ffp-contract=off).
 *  - Reductions (sum of squares): a width-16 strided accumulator array —
 *    element i lands in lane i%16 — folded by the fixed tree
 *    acc[l]+=acc[l+8], acc[l]+=acc[l+4], acc[l]+=acc[l+2],
 *    acc[0]+acc[1]. The scalar tier materializes the 16 lanes in memory.
 *  - FP16/BF16 converts are exact (dequant) or round-to-nearest-even
 *    (quant) with hardware-identical NaN handling, verified exhaustively.
 *
 * Under this contract the dispatch tier, like the thread count, can never
 * change a result — the existing determinism suites stay the gate.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace neo::kernels {

/** Dispatch tiers, narrowest to widest. */
enum class Tier {
    kScalar = 0,
    /** 128-bit VEX kernels (requires AVX+FMA; a narrow-width cross-check
        tier on wider hosts — plain SSE4.2 hosts lack FMA and fall back
        to scalar, which carries the SSE4.2 baseline via std::fma). */
    kSse = 1,
    kAvx2 = 2,
    kAvx512 = 3,
};

/** Lowercase tier name as accepted by NEO_KERNEL_TIER. */
const char* TierName(Tier tier);

/** Rows per packed-A panel (register tile height). */
inline constexpr size_t kMr = 6;
/** Columns per packed-B panel (register tile width / lane count). */
inline constexpr size_t kNr = 16;
/** Strided-accumulator width of the canonical reduction schedule. */
inline constexpr size_t kReduceLanes = 16;

/**
 * The per-tier kernel function table. All pointers are always non-null;
 * semantics (and bit patterns) are identical across tiers.
 */
struct KernelTable {
    Tier tier;

    /**
     * Register-tiled GEMM microkernel over packed panels:
     *   c[r*ldc + j] += sum_{kk<k} fma(a_panel[kk*kMr + r],
     *                                  b_panel[kk*kNr + j])
     * for r < mr (<= kMr) and j < nr (<= kNr), ascending kk. Panels are
     * zero-padded to full tile size; padded rows/lanes are computed but
     * never stored.
     */
    void (*gemm_tile)(size_t k, const float* a_panel, const float* b_panel,
                      float* c, size_t ldc, size_t mr, size_t nr);

    /**
     * Fused gather + sum pooling: out[d] += sum_i rows[indices[i]*dim+d]
     * with i ascending (one bag of a pooled lookup).
     */
    void (*pool_rows_f32)(const float* rows, size_t dim,
                          const int64_t* indices, size_t count, float* out);

    /** Same, over IEEE binary16 row storage (exact widening). */
    void (*pool_rows_f16)(const uint16_t* rows, size_t dim,
                          const int64_t* indices, size_t count, float* out);

    /** dst[i] += src[i]. */
    void (*add_f32)(const float* src, float* dst, size_t n);

    /** dst[i] += w * src[i] (mul and add rounded separately). */
    void (*axpy_f32)(float w, const float* src, float* dst, size_t n);

    /**
     * AdaGrad element update: state[i] += g[i]*g[i];
     * w[i] -= (lr*g[i]) / (sqrt(state[i]) + eps). Every intermediate is
     * rounded exactly as written (sqrt and divide are correctly rounded
     * in both scalar and vector ISAs).
     */
    void (*adagrad_update_f32)(float lr, float eps, const float* g,
                               float* state, float* w, size_t n);

    /** Sum of x[i]^2 under the width-16 strided schedule. */
    float (*sum_squares_f32)(const float* x, size_t n);

    /** out[i] = widen(in[i]) for binary16 bits (exact). */
    void (*dequant_f16)(const uint16_t* in, float* out, size_t n);

    /** out[i] = round-to-nearest-even binary16 bits of in[i]. */
    void (*quant_f16)(const float* in, uint16_t* out, size_t n);

    /** out[i] = widen(in[i]) for bfloat16 bits (exact shift). */
    void (*dequant_bf16)(const uint16_t* in, float* out, size_t n);

    /** out[i] = round-to-nearest-even bfloat16 bits of in[i]. */
    void (*quant_bf16)(const float* in, uint16_t* out, size_t n);
};

/**
 * The active kernel table. Resolved once on first use: the widest tier
 * both compiled in and supported by the host, unless NEO_KERNEL_TIER
 * (scalar|sse|avx2|avx512) overrides it — a fatal error if the requested
 * tier is unknown or unsupported. The selection is published to
 * obs::MetricsRegistry as gauge `neo.kernels.tier`.
 */
const KernelTable& Active();

/** Tier of the active table. */
Tier ActiveTier();

/**
 * Tiers this process can execute: compiled-in and runtime-supported, in
 * ascending width. Always contains Tier::kScalar.
 */
std::vector<Tier> SupportedTiers();

/**
 * Swap the active table (test/bench knob for cross-tier sweeps; fatal if
 * the tier is unsupported). Callers must ensure no kernel work is in
 * flight. Re-publishes the `neo.kernels.tier` gauge.
 */
void SetTier(Tier tier);

/** Per-tier table access without switching (bench plumbing). */
const KernelTable& TableFor(Tier tier);

}  // namespace neo::kernels
