/**
 * @file
 * AVX2+FMA tier: 256-bit kernels, one lane per output element, chains in
 * canonical order (see kernels.h). Compiled with -mavx2 -mfma -mf16c
 * -ffp-contract=off in its own TU so the rest of the binary stays
 * runnable on narrower hosts; the dispatcher only hands these pointers
 * out when CPUID says the host can execute them.
 */
#include <immintrin.h>

#include <cmath>

#include "common/float_types.h"
#include "kernels/kernels.h"

namespace neo::kernels {

namespace {

/** maskload/maskstore mask covering the first `rem` (< 8) lanes. */
inline __m256i
TailMask(size_t rem)
{
    alignas(32) static const int32_t kMaskTable[16] = {
        -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kMaskTable + 8 - rem));
}

// ------------------------------------------------------------------ GEMM

void
GemmTileAvx2(size_t k, const float* a_panel, const float* b_panel, float* c,
             size_t ldc, size_t mr, size_t nr)
{
    // 6x16 register tile: two ymm accumulators per row. Lane j of row r
    // owns the (r, j) chain; fma in ascending k exactly as the scalar
    // reference spells it.
    __m256 acc[kMr][2];
    for (size_t r = 0; r < kMr; r++) {
        acc[r][0] = _mm256_setzero_ps();
        acc[r][1] = _mm256_setzero_ps();
    }
    for (size_t kk = 0; kk < k; kk++) {
        const __m256 b0 = _mm256_loadu_ps(b_panel + kk * kNr);
        const __m256 b1 = _mm256_loadu_ps(b_panel + kk * kNr + 8);
        const float* a = a_panel + kk * kMr;
        for (size_t r = 0; r < kMr; r++) {
            const __m256 av = _mm256_broadcast_ss(a + r);
            acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
            acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
        }
    }
    if (nr == kNr) {
        for (size_t r = 0; r < mr; r++) {
            float* crow = c + r * ldc;
            _mm256_storeu_ps(crow,
                             _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
            _mm256_storeu_ps(
                crow + 8,
                _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
        }
        return;
    }
    alignas(32) float tile[2 * 8];
    for (size_t r = 0; r < mr; r++) {
        _mm256_store_ps(tile, acc[r][0]);
        _mm256_store_ps(tile + 8, acc[r][1]);
        float* crow = c + r * ldc;
        for (size_t j = 0; j < nr; j++) {
            crow[j] += tile[j];
        }
    }
}

// --------------------------------------------------------------- pooling

void
PoolRowsF32Avx2(const float* rows, size_t dim, const int64_t* indices,
                size_t count, float* out)
{
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
        __m256 acc0 = _mm256_loadu_ps(out + d);
        __m256 acc1 = _mm256_loadu_ps(out + d + 8);
        for (size_t i = 0; i < count; i++) {
            const float* row =
                rows + static_cast<size_t>(indices[i]) * dim + d;
            acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(row));
            acc1 = _mm256_add_ps(acc1, _mm256_loadu_ps(row + 8));
        }
        _mm256_storeu_ps(out + d, acc0);
        _mm256_storeu_ps(out + d + 8, acc1);
    }
    if (d + 8 <= dim) {
        __m256 acc = _mm256_loadu_ps(out + d);
        for (size_t i = 0; i < count; i++) {
            acc = _mm256_add_ps(
                acc, _mm256_loadu_ps(
                         rows + static_cast<size_t>(indices[i]) * dim + d));
        }
        _mm256_storeu_ps(out + d, acc);
        d += 8;
    }
    for (; d < dim; d++) {
        float acc = out[d];
        for (size_t i = 0; i < count; i++) {
            acc += rows[static_cast<size_t>(indices[i]) * dim + d];
        }
        out[d] = acc;
    }
}

void
PoolRowsF16Avx2(const uint16_t* rows, size_t dim, const int64_t* indices,
                size_t count, float* out)
{
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
        __m256 acc0 = _mm256_loadu_ps(out + d);
        __m256 acc1 = _mm256_loadu_ps(out + d + 8);
        for (size_t i = 0; i < count; i++) {
            const uint16_t* row =
                rows + static_cast<size_t>(indices[i]) * dim + d;
            const __m128i h0 =
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
            const __m128i h1 =
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 8));
            acc0 = _mm256_add_ps(acc0, _mm256_cvtph_ps(h0));
            acc1 = _mm256_add_ps(acc1, _mm256_cvtph_ps(h1));
        }
        _mm256_storeu_ps(out + d, acc0);
        _mm256_storeu_ps(out + d + 8, acc1);
    }
    if (d + 8 <= dim) {
        __m256 acc = _mm256_loadu_ps(out + d);
        for (size_t i = 0; i < count; i++) {
            const uint16_t* row =
                rows + static_cast<size_t>(indices[i]) * dim + d;
            acc = _mm256_add_ps(
                acc, _mm256_cvtph_ps(_mm_loadu_si128(
                         reinterpret_cast<const __m128i*>(row))));
        }
        _mm256_storeu_ps(out + d, acc);
        d += 8;
    }
    for (; d < dim; d++) {
        float acc = out[d];
        for (size_t i = 0; i < count; i++) {
            acc += detail::HalfBitsToFloat(
                rows[static_cast<size_t>(indices[i]) * dim + d]);
        }
        out[d] = acc;
    }
}

// ----------------------------------------------------- elementwise math

void
AddF32Avx2(const float* src, float* dst, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                                _mm256_loadu_ps(src + i)));
    }
    for (; i < n; i++) {
        dst[i] += src[i];
    }
}

void
AxpyF32Avx2(float w, const float* src, float* dst, size_t n)
{
    const __m256 wv = _mm256_set1_ps(w);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // mul and add rounded separately (canonical; no fma here).
        const __m256 prod = _mm256_mul_ps(wv, _mm256_loadu_ps(src + i));
        _mm256_storeu_ps(dst + i,
                         _mm256_add_ps(_mm256_loadu_ps(dst + i), prod));
    }
    for (; i < n; i++) {
        dst[i] += w * src[i];
    }
}

void
AdagradUpdateF32Avx2(float lr, float eps, const float* g, float* state,
                     float* w, size_t n)
{
    const __m256 lrv = _mm256_set1_ps(lr);
    const __m256 epsv = _mm256_set1_ps(eps);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 gv = _mm256_loadu_ps(g + i);
        const __m256 sv = _mm256_add_ps(_mm256_loadu_ps(state + i),
                                        _mm256_mul_ps(gv, gv));
        _mm256_storeu_ps(state + i, sv);
        const __m256 num = _mm256_mul_ps(lrv, gv);
        const __m256 den = _mm256_add_ps(_mm256_sqrt_ps(sv), epsv);
        _mm256_storeu_ps(w + i, _mm256_sub_ps(_mm256_loadu_ps(w + i),
                                              _mm256_div_ps(num, den)));
    }
    for (; i < n; i++) {
        state[i] += g[i] * g[i];
        w[i] -= (lr * g[i]) / (std::sqrt(state[i]) + eps);
    }
}

float
SumSquaresF32Avx2(const float* x, size_t n)
{
    // Lanes 0..7 in acc0, lanes 8..15 in acc1 of the canonical width-16
    // strided schedule. Masked tail lanes contribute +0.0f squares, which
    // is exact for the nonnegative accumulators (DESIGN.md §4h).
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256 x0 = _mm256_loadu_ps(x + i);
        const __m256 x1 = _mm256_loadu_ps(x + i + 8);
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(x0, x0));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(x1, x1));
    }
    const size_t rem = n - i;
    if (rem) {
        const __m256 x0 =
            rem >= 8 ? _mm256_loadu_ps(x + i)
                     : _mm256_maskload_ps(x + i, TailMask(rem));
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(x0, x0));
        if (rem > 8) {
            const __m256 x1 =
                _mm256_maskload_ps(x + i + 8, TailMask(rem - 8));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(x1, x1));
        }
    }
    // Fixed fold tree: acc[l]+=acc[l+8]; +4; +2; acc[0]+acc[1].
    const __m256 s8 = _mm256_add_ps(acc0, acc1);
    const __m128 s4 = _mm_add_ps(_mm256_castps256_ps128(s8),
                                 _mm256_extractf128_ps(s8, 1));
    const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
    alignas(16) float lanes[4];
    _mm_store_ps(lanes, s2);
    return lanes[0] + lanes[1];
}

// ------------------------------------------------------------- converts

void
DequantF16Avx2(const uint16_t* in, float* out, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(
            out + i, _mm256_cvtph_ps(_mm_loadu_si128(
                         reinterpret_cast<const __m128i*>(in + i))));
    }
    for (; i < n; i++) {
        out[i] = detail::HalfBitsToFloat(in[i]);
    }
}

void
QuantF16Avx2(const float* in, uint16_t* out, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i h = _mm256_cvtps_ph(
            _mm256_loadu_ps(in + i),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), h);
    }
    for (; i < n; i++) {
        out[i] = detail::FloatToHalfBits(in[i]);
    }
}

void
DequantBf16Avx2(const uint16_t* in, float* out, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i h =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
        const __m256i wide = _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
        _mm256_storeu_ps(out + i, _mm256_castsi256_ps(wide));
    }
    for (; i < n; i++) {
        out[i] = detail::BFloat16BitsToFloat(in[i]);
    }
}

void
QuantBf16Avx2(const float* in, uint16_t* out, size_t n)
{
    // Integer emulation of the exact FloatToBFloat16Bits formula
    // (round-to-nearest-even with the NaN-quieting branch), so results
    // are bit-identical to the scalar tier by construction.
    const __m256i exp_mask = _mm256_set1_epi32(0x7F800000);
    const __m256i mant_mask = _mm256_set1_epi32(0x007FFFFF);
    const __m256i rnd_base = _mm256_set1_epi32(0x7FFF);
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i nan_or = _mm256_set1_epi32(0x40);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i u = _mm256_castps_si256(_mm256_loadu_ps(in + i));
        const __m256i shifted = _mm256_srli_epi32(u, 16);
        const __m256i is_exp_max = _mm256_cmpeq_epi32(
            _mm256_and_si256(u, exp_mask), exp_mask);
        const __m256i mant_zero = _mm256_cmpeq_epi32(
            _mm256_and_si256(u, mant_mask), _mm256_setzero_si256());
        const __m256i is_nan = _mm256_andnot_si256(mant_zero, is_exp_max);
        const __m256i nan_val = _mm256_or_si256(shifted, nan_or);
        const __m256i round = _mm256_add_epi32(
            rnd_base, _mm256_and_si256(shifted, one));
        const __m256i rounded =
            _mm256_srli_epi32(_mm256_add_epi32(u, round), 16);
        const __m256i sel =
            _mm256_blendv_epi8(rounded, nan_val, is_nan);
        // Narrow 8x32 -> 8x16: values fit in 16 bits, so unsigned
        // saturation is a no-op; packus works per 128-bit half, so
        // permute the halves back into order.
        const __m256i packed = _mm256_packus_epi32(sel, sel);
        const __m256i ordered =
            _mm256_permute4x64_epi64(packed, 0xD8);  // 0,2,1,3
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                         _mm256_castsi256_si128(ordered));
    }
    for (; i < n; i++) {
        out[i] = detail::FloatToBFloat16Bits(in[i]);
    }
}

}  // namespace

namespace detail_tiers {

const KernelTable&
Avx2Table()
{
    static const KernelTable table = {
        Tier::kAvx2,         GemmTileAvx2,    PoolRowsF32Avx2,
        PoolRowsF16Avx2,     AddF32Avx2,      AxpyF32Avx2,
        AdagradUpdateF32Avx2, SumSquaresF32Avx2, DequantF16Avx2,
        QuantF16Avx2,        DequantBf16Avx2, QuantBf16Avx2,
    };
    return table;
}

}  // namespace detail_tiers

}  // namespace neo::kernels
