#include "tensor/activations.h"

#include <algorithm>
#include <cmath>

namespace neo {

void
ReluForward(Matrix& x)
{
    float* p = x.data();
    for (size_t i = 0; i < x.size(); i++) {
        p[i] = std::max(p[i], 0.0f);
    }
}

void
ReluBackward(const Matrix& activation, Matrix& grad)
{
    NEO_CHECK(activation.rows() == grad.rows() &&
              activation.cols() == grad.cols(),
              "ReluBackward shape mismatch");
    const float* a = activation.data();
    float* g = grad.data();
    for (size_t i = 0; i < grad.size(); i++) {
        if (a[i] <= 0.0f) {
            g[i] = 0.0f;
        }
    }
}

void
SigmoidForward(Matrix& x)
{
    float* p = x.data();
    for (size_t i = 0; i < x.size(); i++) {
        p[i] = 1.0f / (1.0f + std::exp(-p[i]));
    }
}

void
BiasForward(const Matrix& bias, Matrix& x)
{
    NEO_CHECK(bias.rows() == 1 && bias.cols() == x.cols(),
              "bias must be 1 x cols");
    const float* b = bias.data();
    for (size_t r = 0; r < x.rows(); r++) {
        float* row = x.Row(r);
        for (size_t c = 0; c < x.cols(); c++) {
            row[c] += b[c];
        }
    }
}

void
BiasBackward(const Matrix& grad, Matrix& grad_bias)
{
    NEO_CHECK(grad_bias.rows() == 1 && grad_bias.cols() == grad.cols(),
              "bias grad must be 1 x cols");
    float* gb = grad_bias.data();
    for (size_t r = 0; r < grad.rows(); r++) {
        const float* row = grad.Row(r);
        for (size_t c = 0; c < grad.cols(); c++) {
            gb[c] += row[c];
        }
    }
}

void
SoftmaxForward(Matrix& x)
{
    for (size_t r = 0; r < x.rows(); r++) {
        float* row = x.Row(r);
        float max_val = row[0];
        for (size_t c = 1; c < x.cols(); c++) {
            max_val = std::max(max_val, row[c]);
        }
        float sum = 0.0f;
        for (size_t c = 0; c < x.cols(); c++) {
            row[c] = std::exp(row[c] - max_val);
            sum += row[c];
        }
        const float inv = 1.0f / sum;
        for (size_t c = 0; c < x.cols(); c++) {
            row[c] *= inv;
        }
    }
}

}  // namespace neo
