/**
 * @file
 * Blocked CPU GEMM kernels. The paper's MLPs run on cuBLAS; here the same
 * linear algebra runs on a cache-blocked CPU kernel so the functional
 * training stack is exact and self-contained. Performance figures for
 * GPU GEMM come from the `sim` roofline model, not from these kernels.
 */
#pragma once

#include "tensor/matrix.h"

namespace neo {

/** Transpose selector for Gemm operands. */
enum class Trans { kNo, kYes };

/**
 * General matrix multiply: C = alpha * op(A) * op(B) + beta * C.
 *
 * Shapes (after applying op): op(A) is m x k, op(B) is k x n, C is m x n.
 * Accumulation is in float with a fixed loop order, so results are bitwise
 * deterministic run-to-run. Row blocks of C are computed in parallel over
 * the shared thread pool (disjoint outputs, fixed block partitioning), so
 * results are also bit-identical at any thread count. Transposed operands
 * are packed per cache block — the full transpose is never materialized.
 */
void Gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c);

/** Convenience: C = A * B (no transpose, alpha=1, beta=0). */
void MatMul(const Matrix& a, const Matrix& b, Matrix& c);

/** Out-of-place transpose: returns a^T. */
Matrix Transpose(const Matrix& a);

}  // namespace neo
