#include "tensor/gemm.h"

#include <algorithm>

namespace neo {

namespace {

// Block sizes chosen for typical L1/L2 on x86; correctness does not depend
// on them.
constexpr size_t kBlockM = 64;
constexpr size_t kBlockN = 64;
constexpr size_t kBlockK = 64;

/** Pack op(A) into a row-major m x k buffer so the inner loop is unit-stride. */
Matrix
Materialize(Trans trans, const Matrix& a)
{
    if (trans == Trans::kNo) {
        return a;
    }
    return Transpose(a);
}

}  // namespace

Matrix
Transpose(const Matrix& a)
{
    Matrix t(a.cols(), a.rows());
    for (size_t r = 0; r < a.rows(); r++) {
        const float* src = a.Row(r);
        for (size_t c = 0; c < a.cols(); c++) {
            t(c, r) = src[c];
        }
    }
    return t;
}

void
Gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
     const Matrix& b, float beta, Matrix& c)
{
    const Matrix a_mat = Materialize(trans_a, a);
    const Matrix b_mat = Materialize(trans_b, b);

    const size_t m = a_mat.rows();
    const size_t k = a_mat.cols();
    const size_t n = b_mat.cols();
    NEO_REQUIRE(b_mat.rows() == k, "Gemm inner dimension mismatch: ",
                k, " vs ", b_mat.rows());
    NEO_REQUIRE(c.rows() == m && c.cols() == n, "Gemm output shape mismatch");

    if (beta == 0.0f) {
        c.Zero();
    } else if (beta != 1.0f) {
        c.Scale(beta);
    }
    if (alpha == 0.0f || m == 0 || n == 0 || k == 0) {
        return;
    }

    // Blocked i-k-j loop: the innermost j loop is unit stride on both B and
    // C, which vectorizes well; the fixed order keeps accumulation
    // deterministic.
    for (size_t i0 = 0; i0 < m; i0 += kBlockM) {
        const size_t i1 = std::min(i0 + kBlockM, m);
        for (size_t k0 = 0; k0 < k; k0 += kBlockK) {
            const size_t k1 = std::min(k0 + kBlockK, k);
            for (size_t j0 = 0; j0 < n; j0 += kBlockN) {
                const size_t j1 = std::min(j0 + kBlockN, n);
                for (size_t i = i0; i < i1; i++) {
                    const float* a_row = a_mat.Row(i);
                    float* c_row = c.Row(i);
                    for (size_t kk = k0; kk < k1; kk++) {
                        const float aik = alpha * a_row[kk];
                        const float* b_row = b_mat.Row(kk);
                        for (size_t j = j0; j < j1; j++) {
                            c_row[j] += aik * b_row[j];
                        }
                    }
                }
            }
        }
    }
}

void
MatMul(const Matrix& a, const Matrix& b, Matrix& c)
{
    Gemm(Trans::kNo, Trans::kNo, 1.0f, a, b, 0.0f, c);
}

}  // namespace neo
