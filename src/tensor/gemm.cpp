#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "common/parallel_for.h"
#include "obs/trace.h"

namespace neo {

namespace {

// Block sizes chosen for typical L1/L2 on x86; correctness does not depend
// on them.
constexpr size_t kBlockM = 64;
constexpr size_t kBlockN = 64;
constexpr size_t kBlockK = 64;

/**
 * Compute C rows [i_begin, i_end) of C += alpha * op(A) * op(B), where
 * i_begin is kBlockM-aligned so block boundaries match the serial schedule.
 *
 * Transposed operands are packed one block panel at a time into the
 * caller-provided scratch (`a_panel` is kBlockM x kBlockK, `b_panel` is
 * kBlockK x kBlockN) so the inner loop stays unit-stride without ever
 * materializing the full transposed matrix. The i-k-j accumulation order
 * is identical to the serial kernel, so results stay bitwise deterministic.
 */
void
GemmRowRange(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
             const Matrix& b, Matrix& c, size_t i_begin, size_t i_end,
             size_t k, size_t n, float* a_panel, float* b_panel)
{
    for (size_t i0 = i_begin; i0 < i_end; i0 += kBlockM) {
        const size_t i1 = std::min(i0 + kBlockM, i_end);
        for (size_t k0 = 0; k0 < k; k0 += kBlockK) {
            const size_t k1 = std::min(k0 + kBlockK, k);
            if (trans_a == Trans::kYes) {
                // op(A)[i, kk] = a(kk, i): gather the column slice once per
                // (i-block, k-block) panel.
                for (size_t kk = k0; kk < k1; kk++) {
                    const float* src = a.Row(kk);
                    float* dst = a_panel + (kk - k0);
                    for (size_t i = i0; i < i1; i++) {
                        dst[(i - i0) * kBlockK] = src[i];
                    }
                }
            }
            for (size_t j0 = 0; j0 < n; j0 += kBlockN) {
                const size_t j1 = std::min(j0 + kBlockN, n);
                if (trans_b == Trans::kYes) {
                    // op(B)[kk, j] = b(j, kk): row j of B supplies column j
                    // of the panel.
                    for (size_t j = j0; j < j1; j++) {
                        const float* src = b.Row(j);
                        float* dst = b_panel + (j - j0);
                        for (size_t kk = k0; kk < k1; kk++) {
                            dst[(kk - k0) * kBlockN] = src[kk];
                        }
                    }
                }
                const size_t jn = j1 - j0;
                for (size_t i = i0; i < i1; i++) {
                    const float* a_base =
                        trans_a == Trans::kYes
                            ? a_panel + (i - i0) * kBlockK
                            : a.Row(i) + k0;
                    float* c_base = c.Row(i) + j0;
                    for (size_t kk = k0; kk < k1; kk++) {
                        const float aik = alpha * a_base[kk - k0];
                        const float* b_base =
                            trans_b == Trans::kYes
                                ? b_panel + (kk - k0) * kBlockN
                                : b.Row(kk) + j0;
                        for (size_t j = 0; j < jn; j++) {
                            c_base[j] += aik * b_base[j];
                        }
                    }
                }
            }
        }
    }
}

}  // namespace

Matrix
Transpose(const Matrix& a)
{
    Matrix t(a.cols(), a.rows());
    for (size_t r = 0; r < a.rows(); r++) {
        const float* src = a.Row(r);
        for (size_t c = 0; c < a.cols(); c++) {
            t(c, r) = src[c];
        }
    }
    return t;
}

void
Gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
     const Matrix& b, float beta, Matrix& c)
{
    // "gemm" is transparent to StepBreakdown: the time rolls up into the
    // enclosing mlp_fwd/mlp_bwd phase while staying visible in Perfetto.
    NEO_TRACE_SPAN("gemm", "gemm");
    const size_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
    const size_t k = trans_a == Trans::kNo ? a.cols() : a.rows();
    const size_t n = trans_b == Trans::kNo ? b.cols() : b.rows();
    const size_t b_k = trans_b == Trans::kNo ? b.rows() : b.cols();
    NEO_REQUIRE(b_k == k, "Gemm inner dimension mismatch: ", k, " vs ", b_k);
    NEO_REQUIRE(c.rows() == m && c.cols() == n, "Gemm output shape mismatch");

    if (beta == 0.0f) {
        c.Zero();
    } else if (beta != 1.0f) {
        c.Scale(beta);
    }
    if (alpha == 0.0f || m == 0 || n == 0 || k == 0) {
        return;
    }

    // Blocked i-k-j loop: the innermost j loop is unit stride on both B and
    // C, which vectorizes well; the fixed order keeps accumulation
    // deterministic. Row blocks write disjoint C rows, so the M dimension
    // parallelizes with no cross-chunk interaction (grain = 1 block).
    const size_t m_blocks = (m + kBlockM - 1) / kBlockM;
    ParallelFor(0, m_blocks, 1, [&](size_t blk0, size_t blk1) {
        std::vector<float> a_panel(
            trans_a == Trans::kYes ? kBlockM * kBlockK : 0);
        std::vector<float> b_panel(
            trans_b == Trans::kYes ? kBlockK * kBlockN : 0);
        GemmRowRange(trans_a, trans_b, alpha, a, b, c, blk0 * kBlockM,
                     std::min(blk1 * kBlockM, m), k, n, a_panel.data(),
                     b_panel.data());
    });
}

void
MatMul(const Matrix& a, const Matrix& b, Matrix& c)
{
    Gemm(Trans::kNo, Trans::kNo, 1.0f, a, b, 0.0f, c);
}

}  // namespace neo
