#include "tensor/gemm.h"

#include <algorithm>

#include "common/aligned.h"
#include "common/parallel_for.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neo {

namespace {

using kernels::kMr;
using kernels::kNr;

/** M rows per ParallelFor chunk (the pre-kernel partitioning, kept). */
constexpr size_t kBlockM = 64;
/** B panels per packing chunk (fixed grain; packing is a pure copy). */
constexpr size_t kPackGrain = 4;

/**
 * Pack op(B) columns [p*kNr, p*kNr + nr) into panel `bp`:
 * bp[kk*kNr + lane] = op(B)[kk][p*kNr + lane], zero-padding lanes >= nr
 * so the microkernel always runs full-width (padded lanes are computed
 * but never stored).
 */
void
PackBPanel(Trans trans_b, const Matrix& b, size_t k, size_t j0, size_t nr,
           float* bp)
{
    if (trans_b == Trans::kNo) {
        for (size_t kk = 0; kk < k; kk++) {
            const float* src = b.Row(kk) + j0;
            float* dst = bp + kk * kNr;
            size_t lane = 0;
            for (; lane < nr; lane++) {
                dst[lane] = src[lane];
            }
            for (; lane < kNr; lane++) {
                dst[lane] = 0.0f;
            }
        }
        return;
    }
    // op(B)[kk][j] = b(j, kk): row j0+lane of B supplies lane `lane`.
    for (size_t lane = 0; lane < nr; lane++) {
        const float* src = b.Row(j0 + lane);
        for (size_t kk = 0; kk < k; kk++) {
            bp[kk * kNr + lane] = src[kk];
        }
    }
    for (size_t lane = nr; lane < kNr; lane++) {
        for (size_t kk = 0; kk < k; kk++) {
            bp[kk * kNr + lane] = 0.0f;
        }
    }
}

/**
 * Pack rows [i0, i0 + mr) of alpha * op(A) into strip `ap`:
 * ap[kk*kMr + r] = alpha * op(A)[i0 + r][kk], zero-padding rows >= mr.
 * Folding alpha here rounds it once per A element at pack time, so every
 * tier consumes identical panel bits.
 */
void
PackAStrip(Trans trans_a, float alpha, const Matrix& a, size_t k, size_t i0,
           size_t mr, float* ap)
{
    if (trans_a == Trans::kNo) {
        for (size_t r = 0; r < mr; r++) {
            const float* src = a.Row(i0 + r);
            for (size_t kk = 0; kk < k; kk++) {
                ap[kk * kMr + r] = alpha * src[kk];
            }
        }
    } else {
        // op(A)[i][kk] = a(kk, i).
        for (size_t kk = 0; kk < k; kk++) {
            const float* src = a.Row(kk) + i0;
            float* dst = ap + kk * kMr;
            for (size_t r = 0; r < mr; r++) {
                dst[r] = alpha * src[r];
            }
        }
    }
    for (size_t r = mr; r < kMr; r++) {
        for (size_t kk = 0; kk < k; kk++) {
            ap[kk * kMr + r] = 0.0f;
        }
    }
}

}  // namespace

Matrix
Transpose(const Matrix& a)
{
    Matrix t(a.cols(), a.rows());
    for (size_t r = 0; r < a.rows(); r++) {
        const float* src = a.Row(r);
        for (size_t c = 0; c < a.cols(); c++) {
            t(c, r) = src[c];
        }
    }
    return t;
}

void
Gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
     const Matrix& b, float beta, Matrix& c)
{
    // "gemm" is transparent to StepBreakdown: the time rolls up into the
    // enclosing mlp_fwd/mlp_bwd phase while staying visible in Perfetto.
    NEO_TRACE_SPAN("gemm", "gemm");
    const size_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
    const size_t k = trans_a == Trans::kNo ? a.cols() : a.rows();
    const size_t n = trans_b == Trans::kNo ? b.cols() : b.rows();
    const size_t b_k = trans_b == Trans::kNo ? b.rows() : b.cols();
    NEO_REQUIRE(b_k == k, "Gemm inner dimension mismatch: ", k, " vs ", b_k);
    NEO_REQUIRE(c.rows() == m && c.cols() == n, "Gemm output shape mismatch");

    if (beta == 0.0f) {
        c.Zero();
    } else if (beta != 1.0f) {
        c.Scale(beta);
    }
    if (alpha == 0.0f || m == 0 || n == 0 || k == 0) {
        return;
    }

    const kernels::KernelTable& kt = kernels::Active();
    static obs::Counter& gemm_calls =
        obs::MetricsRegistry::Get().GetCounter("neo.kernels.gemm_calls");
    gemm_calls.Add();

    // Panel-pack op(B) once, up front: ceil(n/kNr) column panels of
    // k x kNr each, zero-padded to full width. Packing is a pure copy
    // with disjoint per-panel outputs, so the fixed-grain ParallelFor
    // cannot perturb results.
    const size_t n_panels = (n + kNr - 1) / kNr;
    static thread_local AlignedVector<float> b_packed;
    b_packed.resize(n_panels * k * kNr);
    float* b_packed_ptr = b_packed.data();
    ParallelFor(0, n_panels, kPackGrain, [&](size_t p0, size_t p1) {
        for (size_t p = p0; p < p1; p++) {
            const size_t j0 = p * kNr;
            PackBPanel(trans_b, b, k, j0, std::min(kNr, n - j0),
                       b_packed_ptr + p * k * kNr);
        }
    });

    // M-block outer loop: fixed kBlockM partitioning (grain = 1 block),
    // identical to the pre-kernel schedule, each chunk writing disjoint
    // C rows. Inside a block, kMr-row strips of alpha * op(A) are packed
    // into per-thread scratch and swept across every B panel while hot.
    const size_t m_blocks = (m + kBlockM - 1) / kBlockM;
    ParallelFor(0, m_blocks, 1, [&](size_t blk0, size_t blk1) {
        static thread_local AlignedVector<float> a_strip;
        a_strip.resize(k * kMr);
        for (size_t blk = blk0; blk < blk1; blk++) {
            const size_t i_begin = blk * kBlockM;
            const size_t i_end = std::min(i_begin + kBlockM, m);
            for (size_t i0 = i_begin; i0 < i_end; i0 += kMr) {
                const size_t mr = std::min(kMr, i_end - i0);
                PackAStrip(trans_a, alpha, a, k, i0, mr, a_strip.data());
                for (size_t p = 0; p < n_panels; p++) {
                    const size_t j0 = p * kNr;
                    kt.gemm_tile(k, a_strip.data(),
                                 b_packed_ptr + p * k * kNr,
                                 c.Row(i0) + j0, c.cols(), mr,
                                 std::min(kNr, n - j0));
                }
            }
        }
    });
}

void
MatMul(const Matrix& a, const Matrix& b, Matrix& c)
{
    Gemm(Trans::kNo, Trans::kNo, 1.0f, a, b, 0.0f, c);
}

}  // namespace neo
