/**
 * @file
 * Row-major dense float matrix. The MLP stack, interaction arch and
 * optimizers all operate on this type; it deliberately stays minimal
 * (no expression templates) so kernels remain easy to audit.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "common/aligned.h"
#include "common/logging.h"
#include "common/rng.h"

namespace neo {

/** Dense row-major matrix of floats. */
class Matrix
{
  public:
    Matrix() = default;

    /** Allocate a rows x cols matrix, zero-initialized. */
    Matrix(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

    /** Allocate and fill from an explicit buffer (row-major). */
    Matrix(size_t rows, size_t cols, const std::vector<float>& data)
        : rows_(rows), cols_(cols), data_(data.begin(), data.end())
    {
        NEO_REQUIRE(data_.size() == rows_ * cols_,
                    "matrix data size mismatch");
    }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    /** Element access (debug-checked). */
    float&
    operator()(size_t r, size_t c)
    {
        NEO_CHECK(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    float
    operator()(size_t r, size_t c) const
    {
        NEO_CHECK(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    /** Pointer to the start of row r. */
    float* Row(size_t r) { return data_.data() + r * cols_; }
    const float* Row(size_t r) const { return data_.data() + r * cols_; }

    /** Set every element to `value`. */
    void Fill(float value);

    /** Set every element to zero. */
    void Zero() { Fill(0.0f); }

    /** Fill with He-uniform init (for ReLU MLPs), deterministic via rng. */
    void InitHeUniform(Rng& rng);

    /** Fill with uniform values in [lo, hi]. */
    void InitUniform(Rng& rng, float lo, float hi);

    /** Elementwise a += b. */
    void Add(const Matrix& other);

    /** Elementwise a += alpha * b (axpy). */
    void Axpy(float alpha, const Matrix& other);

    /** Multiply every element by `s`. */
    void Scale(float s);

    /** Max |a - b| over all elements; matrices must be same shape. */
    static float MaxAbsDiff(const Matrix& a, const Matrix& b);

    /** Exact elementwise equality (bitwise determinism checks). */
    static bool Identical(const Matrix& a, const Matrix& b);

    /** Frobenius norm. */
    float Norm() const;

    /**
     * Raw storage access (checkpoint serialization). The storage is an
     * AlignedVector: Matrix data always starts on a 64-byte boundary so
     * the SIMD microkernels see cache-line-aligned operands.
     */
    const AlignedVector<float>& vec() const { return data_; }
    AlignedVector<float>& vec() { return data_; }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    AlignedVector<float> data_;
};

}  // namespace neo
