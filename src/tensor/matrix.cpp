#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.h"

namespace neo {

void
Matrix::Fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Matrix::InitHeUniform(Rng& rng)
{
    // He et al. bound: sqrt(6 / fan_in) with fan_in = cols (weights stored
    // as [out, in]).
    const float bound =
        cols_ > 0 ? std::sqrt(6.0f / static_cast<float>(cols_)) : 0.0f;
    InitUniform(rng, -bound, bound);
}

void
Matrix::InitUniform(Rng& rng, float lo, float hi)
{
    for (auto& x : data_) {
        x = rng.NextUniform(lo, hi);
    }
}

void
Matrix::Add(const Matrix& other)
{
    NEO_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "Add shape mismatch");
    kernels::Active().add_f32(other.data_.data(), data_.data(),
                              data_.size());
}

void
Matrix::Axpy(float alpha, const Matrix& other)
{
    NEO_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "Axpy shape mismatch");
    kernels::Active().axpy_f32(alpha, other.data_.data(), data_.data(),
                               data_.size());
}

void
Matrix::Scale(float s)
{
    for (auto& x : data_) {
        x *= s;
    }
}

float
Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b)
{
    NEO_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_,
              "MaxAbsDiff shape mismatch");
    float max_diff = 0.0f;
    for (size_t i = 0; i < a.data_.size(); i++) {
        max_diff = std::max(max_diff, std::abs(a.data_[i] - b.data_[i]));
    }
    return max_diff;
}

bool
Matrix::Identical(const Matrix& a, const Matrix& b)
{
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
}

float
Matrix::Norm() const
{
    double sum = 0.0;
    for (float x : data_) {
        sum += static_cast<double>(x) * x;
    }
    return static_cast<float>(std::sqrt(sum));
}

}  // namespace neo
