/**
 * @file
 * DLRM dot-product feature interaction (Naumov et al. [39]).
 *
 * Inputs: the bottom-MLP output (batch x d) and F pooled embedding vectors
 * (each batch x d). The op concatenates the bottom output with all pairwise
 * dot products of the F+1 vectors (strict upper triangle), giving
 * batch x (d + (F+1)F/2) features for the top MLP.
 */
#pragma once

#include <vector>

#include "tensor/matrix.h"

namespace neo {

/** Dot-product interaction with saved state for the backward pass. */
class DotInteraction
{
  public:
    /**
     * @param num_sparse Number of pooled-embedding inputs F.
     * @param dim Shared feature dimension d.
     */
    DotInteraction(size_t num_sparse, size_t dim);

    /** Output feature width: d + (F+1)F/2. */
    size_t OutputDim() const;

    /**
     * Forward pass.
     *
     * @param dense Bottom-MLP output, batch x d.
     * @param sparse F matrices, each batch x d.
     * @param out Output, batch x OutputDim().
     */
    void Forward(const Matrix& dense, const std::vector<Matrix>& sparse,
                 Matrix& out);

    /**
     * Backward pass; uses the inputs saved by the last Forward().
     *
     * @param grad_out Gradient of the output, batch x OutputDim().
     * @param grad_dense Output gradient w.r.t. the dense input.
     * @param grad_sparse Output gradients w.r.t. each sparse input.
     */
    void Backward(const Matrix& grad_out, Matrix& grad_dense,
                  std::vector<Matrix>& grad_sparse) const;

    size_t num_sparse() const { return num_sparse_; }
    size_t dim() const { return dim_; }

  private:
    /** All F+1 inputs from the last forward, [0]=dense. */
    std::vector<Matrix> saved_inputs_;
    size_t num_sparse_;
    size_t dim_;
};

}  // namespace neo
