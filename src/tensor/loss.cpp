#include "tensor/loss.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace neo {

namespace {

/** Stable -log(sigmoid) pieces: softplus(z) = log(1 + e^z). */
double
Softplus(double z)
{
    if (z > 30.0) {
        return z;
    }
    if (z < -30.0) {
        return 0.0;
    }
    return std::log1p(std::exp(z));
}

}  // namespace

double
BceWithLogitsLoss(const Matrix& logits, const std::vector<float>& labels)
{
    NEO_REQUIRE(logits.cols() == 1, "logits must be batch x 1");
    NEO_REQUIRE(logits.rows() == labels.size(), "logits/labels size mismatch");
    double sum = 0.0;
    for (size_t i = 0; i < labels.size(); i++) {
        const double z = logits(i, 0);
        const double y = labels[i];
        // loss = softplus(z) - y*z  (stable for both signs of z)
        sum += Softplus(z) - y * z;
    }
    return sum / static_cast<double>(labels.size());
}

void
BceWithLogitsGrad(const Matrix& logits, const std::vector<float>& labels,
                  Matrix& grad, size_t denom)
{
    NEO_REQUIRE(logits.cols() == 1, "logits must be batch x 1");
    NEO_REQUIRE(logits.rows() == labels.size(), "logits/labels size mismatch");
    NEO_REQUIRE(grad.rows() == logits.rows() && grad.cols() == 1,
                "grad shape mismatch");
    if (denom == 0) {
        denom = labels.size();
    }
    const float inv_batch = 1.0f / static_cast<float>(denom);
    for (size_t i = 0; i < labels.size(); i++) {
        const float z = logits(i, 0);
        const float p = 1.0f / (1.0f + std::exp(-z));
        grad(i, 0) = (p - labels[i]) * inv_batch;
    }
}

void
NormalizedEntropy::Add(double predicted_prob, double label)
{
    const double p = std::clamp(predicted_prob, 1e-9, 1.0 - 1e-9);
    loss_sum_ += -(label * std::log(p) + (1.0 - label) * std::log(1.0 - p));
    label_sum_ += label;
    count_++;
}

void
NormalizedEntropy::AddLogits(const Matrix& logits,
                             const std::vector<float>& labels)
{
    NEO_REQUIRE(logits.cols() == 1 && logits.rows() == labels.size(),
                "AddLogits shape mismatch");
    for (size_t i = 0; i < labels.size(); i++) {
        const double p = 1.0 / (1.0 + std::exp(-logits(i, 0)));
        Add(p, labels[i]);
    }
}

double
NormalizedEntropy::MeanLogLoss() const
{
    NEO_REQUIRE(count_ > 0, "NE over empty sample");
    return loss_sum_ / static_cast<double>(count_);
}

double
NormalizedEntropy::BaseRate() const
{
    NEO_REQUIRE(count_ > 0, "NE over empty sample");
    return label_sum_ / static_cast<double>(count_);
}

double
NormalizedEntropy::Value() const
{
    const double p = std::clamp(BaseRate(), 1e-9, 1.0 - 1e-9);
    const double base_entropy =
        -(p * std::log(p) + (1.0 - p) * std::log(1.0 - p));
    return MeanLogLoss() / base_entropy;
}

void
NormalizedEntropy::Merge(const NormalizedEntropy& other)
{
    loss_sum_ += other.loss_sum_;
    label_sum_ += other.label_sum_;
    count_ += other.count_;
}

}  // namespace neo
