#include "tensor/interaction.h"

namespace neo {

DotInteraction::DotInteraction(size_t num_sparse, size_t dim)
    : num_sparse_(num_sparse), dim_(dim)
{
    NEO_REQUIRE(dim_ > 0, "interaction dim must be positive");
}

size_t
DotInteraction::OutputDim() const
{
    const size_t f = num_sparse_ + 1;
    return dim_ + f * (f - 1) / 2;
}

void
DotInteraction::Forward(const Matrix& dense, const std::vector<Matrix>& sparse,
                        Matrix& out)
{
    NEO_REQUIRE(sparse.size() == num_sparse_, "wrong number of sparse inputs");
    NEO_REQUIRE(dense.cols() == dim_, "dense dim mismatch");
    const size_t batch = dense.rows();
    NEO_REQUIRE(out.rows() == batch && out.cols() == OutputDim(),
                "interaction output shape mismatch");

    saved_inputs_.clear();
    saved_inputs_.reserve(num_sparse_ + 1);
    saved_inputs_.push_back(dense);
    for (const auto& s : sparse) {
        NEO_REQUIRE(s.rows() == batch && s.cols() == dim_,
                    "sparse input shape mismatch");
        saved_inputs_.push_back(s);
    }

    const size_t f = num_sparse_ + 1;
    for (size_t b = 0; b < batch; b++) {
        float* out_row = out.Row(b);
        // Pass-through of the dense features.
        const float* dense_row = dense.Row(b);
        for (size_t c = 0; c < dim_; c++) {
            out_row[c] = dense_row[c];
        }
        // Strict upper-triangle pairwise dots in a fixed (i < j) order.
        size_t k = dim_;
        for (size_t i = 0; i < f; i++) {
            const float* vi = saved_inputs_[i].Row(b);
            for (size_t j = i + 1; j < f; j++) {
                const float* vj = saved_inputs_[j].Row(b);
                float dot = 0.0f;
                for (size_t c = 0; c < dim_; c++) {
                    dot += vi[c] * vj[c];
                }
                out_row[k++] = dot;
            }
        }
    }
}

void
DotInteraction::Backward(const Matrix& grad_out, Matrix& grad_dense,
                         std::vector<Matrix>& grad_sparse) const
{
    NEO_REQUIRE(saved_inputs_.size() == num_sparse_ + 1,
                "Backward before Forward");
    const size_t batch = saved_inputs_[0].rows();
    NEO_REQUIRE(grad_out.rows() == batch && grad_out.cols() == OutputDim(),
                "grad_out shape mismatch");
    NEO_REQUIRE(grad_dense.rows() == batch && grad_dense.cols() == dim_,
                "grad_dense shape mismatch");
    NEO_REQUIRE(grad_sparse.size() == num_sparse_,
                "grad_sparse count mismatch");

    grad_dense.Zero();
    for (auto& g : grad_sparse) {
        NEO_REQUIRE(g.rows() == batch && g.cols() == dim_,
                    "grad_sparse shape mismatch");
        g.Zero();
    }

    const size_t f = num_sparse_ + 1;
    for (size_t b = 0; b < batch; b++) {
        const float* go = grad_out.Row(b);
        // Dense pass-through gradient.
        float* gd = grad_dense.Row(b);
        for (size_t c = 0; c < dim_; c++) {
            gd[c] = go[c];
        }
        // d(vi . vj)/dvi = vj and vice versa.
        size_t k = dim_;
        for (size_t i = 0; i < f; i++) {
            float* gi = i == 0 ? grad_dense.Row(b) : grad_sparse[i - 1].Row(b);
            const float* vi = saved_inputs_[i].Row(b);
            for (size_t j = i + 1; j < f; j++) {
                float* gj =
                    j == 0 ? grad_dense.Row(b) : grad_sparse[j - 1].Row(b);
                const float* vj = saved_inputs_[j].Row(b);
                const float g = go[k++];
                for (size_t c = 0; c < dim_; c++) {
                    gi[c] += g * vj[c];
                    gj[c] += g * vi[c];
                }
            }
        }
    }
}

}  // namespace neo
