/**
 * @file
 * Binary cross-entropy (with logits) loss and the normalized-entropy (NE)
 * metric used throughout the paper's quality evaluation (Fig. 10; He et al.
 * [16]).
 */
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.h"

namespace neo {

/**
 * BCE-with-logits forward: mean over the batch of
 *   -(y*log(sigmoid(z)) + (1-y)*log(1-sigmoid(z)))
 * computed in the numerically stable log-sum-exp form.
 *
 * @param logits Batch x 1 logits.
 * @param labels Batch labels in {0, 1} (floats).
 * @return Mean loss.
 */
double BceWithLogitsLoss(const Matrix& logits,
                         const std::vector<float>& labels);

/**
 * BCE-with-logits backward: grad = (sigmoid(z) - y) / batch.
 *
 * @param logits Batch x 1 logits.
 * @param labels Batch labels.
 * @param grad Output gradient, batch x 1.
 * @param denom Batch denominator; 0 means labels.size(). Distributed
 *   workers pass the GLOBAL batch size so per-worker gradients sum (via
 *   AllReduce) to the reference global-batch gradient.
 */
void BceWithLogitsGrad(const Matrix& logits, const std::vector<float>& labels,
                       Matrix& grad, size_t denom = 0);

/**
 * Accumulator for normalized entropy: average logloss divided by the entropy
 * of the base rate (the average CTR). NE < 1 means the model beats the
 * background-CTR predictor; lower is better.
 */
class NormalizedEntropy
{
  public:
    /** Fold one (probability, label) observation. */
    void Add(double predicted_prob, double label);

    /** Fold a batch of logits. */
    void AddLogits(const Matrix& logits, const std::vector<float>& labels);

    /** Current NE value; requires at least one positive and one negative. */
    double Value() const;

    /** Mean logloss component. */
    double MeanLogLoss() const;

    /** Empirical base rate p = mean label. */
    double BaseRate() const;

    uint64_t count() const { return count_; }

    /** Merge another accumulator (for distributed evaluation). */
    void Merge(const NormalizedEntropy& other);

  private:
    double loss_sum_ = 0.0;
    double label_sum_ = 0.0;
    uint64_t count_ = 0;
};

}  // namespace neo
