/**
 * @file
 * Elementwise activation / bias kernels for the MLP stack: ReLU, sigmoid,
 * softmax and bias addition, each with the backward form needed for
 * training.
 */
#pragma once

#include "tensor/matrix.h"

namespace neo {

/** In-place ReLU: x = max(x, 0). */
void ReluForward(Matrix& x);

/**
 * ReLU backward: grad_in = grad_out where activation > 0 else 0.
 *
 * @param activation The post-ReLU activations from the forward pass.
 * @param grad In/out gradient, masked in place.
 */
void ReluBackward(const Matrix& activation, Matrix& grad);

/** In-place logistic sigmoid. */
void SigmoidForward(Matrix& x);

/** Add a bias row-vector (1 x cols) to every row of x. */
void BiasForward(const Matrix& bias, Matrix& x);

/** Accumulate bias gradient: grad_bias += column sums of grad. */
void BiasBackward(const Matrix& grad, Matrix& grad_bias);

/** Row-wise softmax, numerically stabilized by the row max. */
void SoftmaxForward(Matrix& x);

}  // namespace neo
