#include "ops/dense_optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace neo::ops {

size_t
DenseOptimizer::Register(size_t rows, size_t cols)
{
    Slot slot;
    const size_t n = rows * cols;
    switch (config_.kind) {
      case DenseOptimizerKind::kSgd:
        if (config_.momentum != 0.0f) {
            slot.state1.assign(n, 0.0f);
        }
        break;
      case DenseOptimizerKind::kAdaGrad:
        slot.state1.assign(n, 0.0f);
        break;
      case DenseOptimizerKind::kAdam:
      case DenseOptimizerKind::kLamb:
        slot.state1.assign(n, 0.0f);
        slot.state2.assign(n, 0.0f);
        break;
    }
    slots_.push_back(std::move(slot));
    return slots_.size() - 1;
}

void
DenseOptimizer::Step(size_t slot_id, Matrix& param, const Matrix& grad)
{
    NEO_REQUIRE(slot_id < slots_.size(), "unknown optimizer slot");
    NEO_REQUIRE(param.rows() == grad.rows() && param.cols() == grad.cols(),
                "param/grad shape mismatch");
    Slot& slot = slots_[slot_id];
    const size_t n = param.size();
    float* w = param.data();
    const float* g = grad.data();
    const float lr = config_.learning_rate;

    switch (config_.kind) {
      case DenseOptimizerKind::kSgd: {
        if (config_.momentum == 0.0f) {
            for (size_t i = 0; i < n; i++) {
                w[i] -= lr * g[i];
            }
        } else {
            NEO_CHECK(slot.state1.size() == n, "state size mismatch");
            const float mu = config_.momentum;
            float* v = slot.state1.data();
            for (size_t i = 0; i < n; i++) {
                v[i] = mu * v[i] + g[i];
                w[i] -= lr * v[i];
            }
        }
        break;
      }
      case DenseOptimizerKind::kAdaGrad: {
        NEO_CHECK(slot.state1.size() == n, "state size mismatch");
        float* acc = slot.state1.data();
        for (size_t i = 0; i < n; i++) {
            acc[i] += g[i] * g[i];
            w[i] -= lr * g[i] / (std::sqrt(acc[i]) + config_.eps);
        }
        break;
      }
      case DenseOptimizerKind::kAdam: {
        NEO_CHECK(slot.state1.size() == n && slot.state2.size() == n,
                  "state size mismatch");
        slot.step++;
        const float b1 = config_.beta1;
        const float b2 = config_.beta2;
        const float bc1 = 1.0f - std::pow(b1, static_cast<float>(slot.step));
        const float bc2 = 1.0f - std::pow(b2, static_cast<float>(slot.step));
        float* m = slot.state1.data();
        float* v = slot.state2.data();
        for (size_t i = 0; i < n; i++) {
            m[i] = b1 * m[i] + (1.0f - b1) * g[i];
            v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
            w[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + config_.eps);
        }
        break;
      }
      case DenseOptimizerKind::kLamb: {
        NEO_CHECK(slot.state1.size() == n && slot.state2.size() == n,
                  "state size mismatch");
        slot.step++;
        const float b1 = config_.beta1;
        const float b2 = config_.beta2;
        const float bc1 = 1.0f - std::pow(b1, static_cast<float>(slot.step));
        const float bc2 = 1.0f - std::pow(b2, static_cast<float>(slot.step));
        float* m = slot.state1.data();
        float* v = slot.state2.data();
        // Adam-style per-element update direction...
        double update_norm_sq = 0.0;
        double weight_norm_sq = 0.0;
        std::vector<float> update(n);
        for (size_t i = 0; i < n; i++) {
            m[i] = b1 * m[i] + (1.0f - b1) * g[i];
            v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
            update[i] =
                (m[i] / bc1) / (std::sqrt(v[i] / bc2) + config_.eps);
            update_norm_sq += static_cast<double>(update[i]) * update[i];
            weight_norm_sq += static_cast<double>(w[i]) * w[i];
        }
        // ...scaled by the per-layer trust ratio ||w|| / ||update||.
        const double update_norm = std::sqrt(update_norm_sq);
        const double weight_norm = std::sqrt(weight_norm_sq);
        const float trust =
            (update_norm > 0.0 && weight_norm > 0.0)
                ? static_cast<float>(weight_norm / update_norm)
                : 1.0f;
        for (size_t i = 0; i < n; i++) {
            w[i] -= lr * trust * update[i];
        }
        break;
      }
    }
}

void
DenseOptimizer::Save(BinaryWriter& writer) const
{
    writer.Write<uint64_t>(slots_.size());
    for (const auto& slot : slots_) {
        writer.WriteVector(slot.state1);
        writer.WriteVector(slot.state2);
        writer.Write<uint64_t>(slot.step);
    }
}

void
DenseOptimizer::Load(BinaryReader& reader)
{
    const uint64_t n = reader.Read<uint64_t>();
    NEO_REQUIRE(n == slots_.size(), "optimizer slot count mismatch: saved ",
                n, ", registered ", slots_.size());
    for (auto& slot : slots_) {
        auto state1 = reader.ReadVector<float>();
        auto state2 = reader.ReadVector<float>();
        NEO_REQUIRE(state1.size() == slot.state1.size() &&
                        state2.size() == slot.state2.size(),
                    "optimizer slot state size mismatch");
        slot.state1 = std::move(state1);
        slot.state2 = std::move(state2);
        slot.step = reader.Read<uint64_t>();
    }
}

size_t
DenseOptimizer::StateBytes() const
{
    size_t total = 0;
    for (const auto& slot : slots_) {
        total += (slot.state1.size() + slot.state2.size()) * sizeof(float);
    }
    return total;
}

}  // namespace neo::ops
