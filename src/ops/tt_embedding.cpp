#include "ops/tt_embedding.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace neo::ops {

namespace {

/** Smallest f with f^3 >= n. */
int64_t
CeilCbrt(int64_t n)
{
    int64_t f = static_cast<int64_t>(std::cbrt(static_cast<double>(n)));
    while (f * f * f < n) {
        f++;
    }
    return std::max<int64_t>(1, f);
}

}  // namespace

TtShape
TtShape::Auto(int64_t rows, int64_t dim, int64_t rank)
{
    NEO_REQUIRE(rows > 0 && dim > 0, "bad TT table shape");
    TtShape shape;
    // Row radices: near-cubic so the cores stay balanced.
    const int64_t f1 = CeilCbrt(rows);
    const int64_t rest = (rows + f1 - 1) / f1;
    int64_t f2 = static_cast<int64_t>(
        std::ceil(std::sqrt(static_cast<double>(rest))));
    f2 = std::max<int64_t>(1, f2);
    const int64_t f3 = (rest + f2 - 1) / f2;
    shape.row_factors = {f1, f2, f3};

    // Column radices: the most balanced divisor triple of dim.
    int64_t best_a = dim, best_b = 1, best_c = 1;
    int64_t best_max = dim;
    for (int64_t a = 1; a <= dim; a++) {
        if (dim % a != 0) {
            continue;
        }
        const int64_t ab = dim / a;
        for (int64_t b = 1; b <= ab; b++) {
            if (ab % b != 0) {
                continue;
            }
            const int64_t c = ab / b;
            const int64_t worst = std::max({a, b, c});
            if (worst < best_max) {
                best_max = worst;
                best_a = a;
                best_b = b;
                best_c = c;
            }
        }
    }
    shape.col_factors = {best_a, best_b, best_c};
    shape.ranks = {rank, rank};
    return shape;
}

TtEmbeddingTable::TtEmbeddingTable(int64_t rows, int64_t dim,
                                   const TtShape& shape, uint64_t seed)
    : rows_(rows), dim_(dim), shape_(shape)
{
    NEO_REQUIRE(shape_.PaddedRows() >= rows_,
                "row factors cover fewer than rows");
    NEO_REQUIRE(shape_.Dim() == dim_, "column factors must multiply to dim");
    const auto [h1, h2, h3] = shape_.row_factors;
    const auto [d1, d2, d3] = shape_.col_factors;
    const auto [r1, r2] = shape_.ranks;
    NEO_REQUIRE(r1 >= 1 && r2 >= 1, "TT ranks must be positive");

    cores_[0].resize(static_cast<size_t>(h1) * d1 * r1);
    cores_[1].resize(static_cast<size_t>(h2) * r1 * d2 * r2);
    cores_[2].resize(static_cast<size_t>(h3) * r2 * d3);

    // Initialize so the reconstructed rows have std ~ 1/sqrt(dim):
    // var(E) = r1*r2*sigma^6 for i.i.d. cores.
    const double target_var = 1.0 / static_cast<double>(dim_);
    const double sigma = std::pow(
        target_var / static_cast<double>(r1 * r2), 1.0 / 6.0);
    Rng rng(seed ^ 0x77EE77ull);
    for (auto& core : cores_) {
        for (auto& x : core) {
            x = static_cast<float>(sigma) * rng.NextGaussian();
        }
    }
}

size_t
TtEmbeddingTable::NumParams() const
{
    return cores_[0].size() + cores_[1].size() + cores_[2].size();
}

double
TtEmbeddingTable::CompressionRatio() const
{
    return static_cast<double>(rows_) * static_cast<double>(dim_) /
           static_cast<double>(NumParams());
}

std::array<int64_t, 3>
TtEmbeddingTable::Decompose(int64_t row) const
{
    NEO_CHECK(row >= 0 && row < rows_, "TT row out of range: ", row);
    const auto [h1, h2, h3] = shape_.row_factors;
    (void)h1;
    const int64_t i3 = row % h3;
    const int64_t i2 = (row / h3) % h2;
    const int64_t i1 = row / (h2 * h3);
    return {i1, i2, i3};
}

float*
TtEmbeddingTable::CoreSlice(int k, int64_t sub_index)
{
    return const_cast<float*>(
        static_cast<const TtEmbeddingTable*>(this)->CoreSlice(k, sub_index));
}

const float*
TtEmbeddingTable::CoreSlice(int k, int64_t sub_index) const
{
    const auto [d1, d2, d3] = shape_.col_factors;
    const auto [r1, r2] = shape_.ranks;
    size_t slab = 0;
    switch (k) {
      case 0: slab = static_cast<size_t>(d1) * r1; break;
      case 1: slab = static_cast<size_t>(r1) * d2 * r2; break;
      case 2: slab = static_cast<size_t>(r2) * d3; break;
      default: NEO_PANIC("bad core index");
    }
    return cores_[k].data() + static_cast<size_t>(sub_index) * slab;
}

void
TtEmbeddingTable::Reconstruct(const std::array<int64_t, 3>& sub,
                              std::vector<float>& t12, float* out) const
{
    const auto [d1, d2, d3] = shape_.col_factors;
    const auto [r1, r2] = shape_.ranks;
    const float* a = CoreSlice(0, sub[0]);  // (d1, r1)
    const float* b = CoreSlice(1, sub[1]);  // (r1, d2*r2)
    const float* c = CoreSlice(2, sub[2]);  // (r2, d3)

    // t12 = A . B, shape (d1, d2*r2) == (d1*d2, r2) after reinterpretation.
    t12.assign(static_cast<size_t>(d1) * d2 * r2, 0.0f);
    for (int64_t i = 0; i < d1; i++) {
        for (int64_t k = 0; k < r1; k++) {
            const float aik = a[i * r1 + k];
            const float* b_row = b + k * d2 * r2;
            float* t_row = t12.data() + i * d2 * r2;
            for (int64_t j = 0; j < d2 * r2; j++) {
                t_row[j] += aik * b_row[j];
            }
        }
    }
    // out = t12 . C, shape (d1*d2, d3).
    for (int64_t i = 0; i < d1 * d2; i++) {
        float* out_row = out + i * d3;
        for (int64_t j = 0; j < d3; j++) {
            out_row[j] = 0.0f;
        }
        for (int64_t k = 0; k < r2; k++) {
            const float tik = t12[i * r2 + k];
            const float* c_row = c + k * d3;
            for (int64_t j = 0; j < d3; j++) {
                out_row[j] += tik * c_row[j];
            }
        }
    }
}

void
TtEmbeddingTable::ReadRow(int64_t row, float* out) const
{
    std::vector<float> t12;
    Reconstruct(Decompose(row), t12, out);
}

void
TtEmbeddingTable::AccumulateRow(int64_t row, float weight, float* out) const
{
    std::vector<float> buffer(static_cast<size_t>(dim_));
    ReadRow(row, buffer.data());
    for (int64_t c = 0; c < dim_; c++) {
        out[c] += weight * buffer[c];
    }
}

void
TtEmbeddingTable::ApplyRowGradient(int64_t row, const float* grad, float lr)
{
    const auto sub = Decompose(row);
    const auto [d1, d2, d3] = shape_.col_factors;
    const auto [r1, r2] = shape_.ranks;
    float* a = CoreSlice(0, sub[0]);  // (d1, r1)
    float* b = CoreSlice(1, sub[1]);  // (r1, d2*r2)
    float* c = CoreSlice(2, sub[2]);  // (r2, d3)

    // Forward intermediates (needed by the chain rule).
    std::vector<float> t12;
    std::vector<float> row_buf(static_cast<size_t>(dim_));
    Reconstruct(sub, t12, row_buf.data());

    // grad viewed as (d1*d2, d3).
    // dC[k][j]   = sum_i t12[i][k] * g[i][j]
    std::vector<float> dc(static_cast<size_t>(r2) * d3, 0.0f);
    for (int64_t i = 0; i < d1 * d2; i++) {
        const float* g_row = grad + i * d3;
        for (int64_t k = 0; k < r2; k++) {
            const float t = t12[i * r2 + k];
            float* dc_row = dc.data() + k * d3;
            for (int64_t j = 0; j < d3; j++) {
                dc_row[j] += t * g_row[j];
            }
        }
    }
    // dT12[i][k] = sum_j g[i][j] * C[k][j]
    std::vector<float> dt12(static_cast<size_t>(d1) * d2 * r2, 0.0f);
    for (int64_t i = 0; i < d1 * d2; i++) {
        const float* g_row = grad + i * d3;
        for (int64_t k = 0; k < r2; k++) {
            const float* c_row = c + k * d3;
            float sum = 0.0f;
            for (int64_t j = 0; j < d3; j++) {
                sum += g_row[j] * c_row[j];
            }
            dt12[i * r2 + k] = sum;
        }
    }
    // dT12 viewed as (d1, d2*r2):
    // dA[i][k] = sum_j dT12[i][j] * B[k][j]
    std::vector<float> da(static_cast<size_t>(d1) * r1, 0.0f);
    for (int64_t i = 0; i < d1; i++) {
        const float* dt_row = dt12.data() + i * d2 * r2;
        for (int64_t k = 0; k < r1; k++) {
            const float* b_row = b + k * d2 * r2;
            float sum = 0.0f;
            for (int64_t j = 0; j < d2 * r2; j++) {
                sum += dt_row[j] * b_row[j];
            }
            da[i * r1 + k] = sum;
        }
    }
    // dB[k][j] = sum_i A[i][k] * dT12[i][j]
    std::vector<float> db(static_cast<size_t>(r1) * d2 * r2, 0.0f);
    for (int64_t i = 0; i < d1; i++) {
        const float* dt_row = dt12.data() + i * d2 * r2;
        for (int64_t k = 0; k < r1; k++) {
            const float aik = a[i * r1 + k];
            float* db_row = db.data() + k * d2 * r2;
            for (int64_t j = 0; j < d2 * r2; j++) {
                db_row[j] += aik * dt_row[j];
            }
        }
    }

    // SGD step on all three core slices.
    for (size_t i = 0; i < da.size(); i++) {
        a[i] -= lr * da[i];
    }
    for (size_t i = 0; i < db.size(); i++) {
        b[i] -= lr * db[i];
    }
    for (size_t i = 0; i < dc.size(); i++) {
        c[i] -= lr * dc[i];
    }
}

bool
TtEmbeddingTable::Identical(const TtEmbeddingTable& a,
                            const TtEmbeddingTable& b)
{
    return a.rows_ == b.rows_ && a.dim_ == b.dim_ &&
           a.cores_[0] == b.cores_[0] && a.cores_[1] == b.cores_[1] &&
           a.cores_[2] == b.cores_[2];
}

}  // namespace neo::ops
