#include "ops/embedding_table.h"

#include <cmath>

#include "common/logging.h"
#include "kernels/kernels.h"

namespace neo::ops {

EmbeddingTable::EmbeddingTable(int64_t rows, int64_t dim, Precision precision)
    : rows_(rows), dim_(dim), precision_(precision)
{
    NEO_REQUIRE(rows_ > 0 && dim_ > 0, "embedding table must be non-empty");
    NEO_REQUIRE(precision_ == Precision::kFp32 ||
                precision_ == Precision::kFp16,
                "embedding storage must be fp32 or fp16");
    const size_t count = static_cast<size_t>(rows_) * dim_;
    if (precision_ == Precision::kFp32) {
        data_f32_.assign(count, 0.0f);
    } else {
        data_f16_.assign(count, 0);
    }
}

size_t
EmbeddingTable::ParameterBytes() const
{
    return static_cast<size_t>(rows_) * dim_ * BytesPerElement(precision_);
}

void
EmbeddingTable::InitUniform(Rng& rng)
{
    const float bound = 1.0f / std::sqrt(static_cast<float>(dim_));
    const size_t count = static_cast<size_t>(rows_) * dim_;
    if (precision_ == Precision::kFp32) {
        for (size_t i = 0; i < count; i++) {
            data_f32_[i] = rng.NextUniform(-bound, bound);
        }
    } else {
        for (size_t i = 0; i < count; i++) {
            data_f16_[i] =
                detail::FloatToHalfBits(rng.NextUniform(-bound, bound));
        }
    }
}

void
EmbeddingTable::InitDeterministic(uint64_t table_seed, int64_t row_offset,
                                  int64_t col_offset, int64_t full_dim)
{
    NEO_REQUIRE(full_dim >= col_offset + dim_,
                "column shard exceeds full dimension");
    const float bound = 1.0f / std::sqrt(static_cast<float>(full_dim));
    std::vector<float> full_row(static_cast<size_t>(full_dim));
    for (int64_t r = 0; r < rows_; r++) {
        // One independent stream per global row: the same values appear in
        // the same (row, col) slots no matter how the table is sharded.
        Rng rng(table_seed ^
                (0x9E3779B97F4A7C15ull *
                 static_cast<uint64_t>(row_offset + r + 1)));
        for (int64_t c = 0; c < full_dim; c++) {
            full_row[c] = rng.NextUniform(-bound, bound);
        }
        WriteRow(r, full_row.data() + col_offset);
    }
}

void
EmbeddingTable::ReadRow(int64_t row, float* out) const
{
    NEO_CHECK(row >= 0 && row < rows_, "row index out of range: ", row);
    const size_t base = static_cast<size_t>(row) * dim_;
    if (precision_ == Precision::kFp32) {
        for (int64_t d = 0; d < dim_; d++) {
            out[d] = data_f32_[base + d];
        }
    } else {
        kernels::Active().dequant_f16(data_f16_.data() + base, out,
                                      static_cast<size_t>(dim_));
    }
}

void
EmbeddingTable::WriteRow(int64_t row, const float* in)
{
    NEO_CHECK(row >= 0 && row < rows_, "row index out of range: ", row);
    const size_t base = static_cast<size_t>(row) * dim_;
    if (precision_ == Precision::kFp32) {
        for (int64_t d = 0; d < dim_; d++) {
            data_f32_[base + d] = in[d];
        }
    } else {
        kernels::Active().quant_f16(in, data_f16_.data() + base,
                                    static_cast<size_t>(dim_));
    }
}

void
EmbeddingTable::AccumulateRow(int64_t row, float weight, float* out) const
{
    NEO_CHECK(row >= 0 && row < rows_, "row index out of range: ", row);
    const size_t base = static_cast<size_t>(row) * dim_;
    const kernels::KernelTable& kt = kernels::Active();
    if (precision_ == Precision::kFp32) {
        kt.axpy_f32(weight, data_f32_.data() + base, out,
                    static_cast<size_t>(dim_));
    } else {
        // Exact dequant into scratch, then the same separately-rounded
        // axpy chain the fp32 path runs.
        static thread_local AlignedVector<float> scratch;
        scratch.resize(static_cast<size_t>(dim_));
        kt.dequant_f16(data_f16_.data() + base, scratch.data(),
                       static_cast<size_t>(dim_));
        kt.axpy_f32(weight, scratch.data(), out, static_cast<size_t>(dim_));
    }
}

void
EmbeddingTable::PoolRows(const int64_t* indices, size_t count,
                         float* out) const
{
    for (size_t i = 0; i < count; i++) {
        NEO_CHECK(indices[i] >= 0 && indices[i] < rows_,
                  "row index out of range: ", indices[i]);
    }
    const kernels::KernelTable& kt = kernels::Active();
    if (precision_ == Precision::kFp32) {
        kt.pool_rows_f32(data_f32_.data(), static_cast<size_t>(dim_),
                         indices, count, out);
    } else {
        kt.pool_rows_f16(data_f16_.data(), static_cast<size_t>(dim_),
                         indices, count, out);
    }
}

bool
EmbeddingTable::Identical(const EmbeddingTable& a, const EmbeddingTable& b)
{
    return a.rows_ == b.rows_ && a.dim_ == b.dim_ &&
           a.precision_ == b.precision_ && a.data_f32_ == b.data_f32_ &&
           a.data_f16_ == b.data_f16_;
}

float
EmbeddingTable::MaxAbsDiff(const EmbeddingTable& a, const EmbeddingTable& b)
{
    NEO_REQUIRE(a.rows_ == b.rows_ && a.dim_ == b.dim_,
                "MaxAbsDiff shape mismatch");
    std::vector<float> ra(a.dim_), rb(b.dim_);
    float max_diff = 0.0f;
    for (int64_t r = 0; r < a.rows_; r++) {
        a.ReadRow(r, ra.data());
        b.ReadRow(r, rb.data());
        for (int64_t d = 0; d < a.dim_; d++) {
            max_diff = std::max(max_diff, std::abs(ra[d] - rb[d]));
        }
    }
    return max_diff;
}

void
EmbeddingTable::Save(BinaryWriter& writer) const
{
    writer.Write<uint32_t>(0x454D4254u);  // 'EMBT'
    writer.Write<int64_t>(rows_);
    writer.Write<int64_t>(dim_);
    writer.Write<uint8_t>(precision_ == Precision::kFp16 ? 1 : 0);
    if (precision_ == Precision::kFp32) {
        writer.WriteVector(data_f32_);
    } else {
        writer.WriteVector(data_f16_);
    }
}

EmbeddingTable
EmbeddingTable::Load(BinaryReader& reader)
{
    const uint32_t magic = reader.Read<uint32_t>();
    NEO_REQUIRE(magic == 0x454D4254u, "bad embedding table magic");
    const int64_t rows = reader.Read<int64_t>();
    const int64_t dim = reader.Read<int64_t>();
    const uint8_t prec = reader.Read<uint8_t>();
    EmbeddingTable table(rows, dim,
                         prec ? Precision::kFp16 : Precision::kFp32);
    if (prec) {
        table.data_f16_ =
            reader.ReadVector<uint16_t, AlignedAllocator<uint16_t>>();
        NEO_REQUIRE(table.data_f16_.size() ==
                        static_cast<size_t>(rows) * dim,
                    "checkpoint size mismatch");
    } else {
        table.data_f32_ =
            reader.ReadVector<float, AlignedAllocator<float>>();
        NEO_REQUIRE(table.data_f32_.size() ==
                        static_cast<size_t>(rows) * dim,
                    "checkpoint size mismatch");
    }
    return table;
}

}  // namespace neo::ops
