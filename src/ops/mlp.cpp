#include "ops/mlp.h"

#include "common/logging.h"
#include "obs/trace.h"
#include "tensor/activations.h"
#include "tensor/gemm.h"

namespace neo::ops {

Mlp::Mlp(const MlpConfig& config, Rng& rng) : config_(config)
{
    NEO_REQUIRE(config_.layer_sizes.size() >= 2,
                "MLP needs at least input and output sizes");
    const size_t layers = config_.layer_sizes.size() - 1;
    weights_.reserve(layers);
    biases_.reserve(layers);
    for (size_t l = 0; l < layers; l++) {
        const size_t in = config_.layer_sizes[l];
        const size_t out = config_.layer_sizes[l + 1];
        NEO_REQUIRE(in > 0 && out > 0, "layer sizes must be positive");
        weights_.emplace_back(out, in);
        weights_.back().InitHeUniform(rng);
        biases_.emplace_back(1, out);
        w_grads_.emplace_back(out, in);
        b_grads_.emplace_back(1, out);
    }
    inputs_.resize(layers);
    acts_.resize(layers);
}

void
Mlp::Forward(const Matrix& x, Matrix& out)
{
    NEO_TRACE_SPAN("mlp_forward", "mlp_fwd");
    NEO_REQUIRE(x.cols() == InputDim(), "MLP input dim mismatch");
    const size_t layers = weights_.size();
    const Matrix* cur = &x;
    for (size_t l = 0; l < layers; l++) {
        inputs_[l] = *cur;  // save for backward
        Matrix& act = acts_[l];
        const size_t out_dim = weights_[l].rows();
        if (act.rows() != cur->rows() || act.cols() != out_dim) {
            act = Matrix(cur->rows(), out_dim);
        }
        // act = cur * W^T
        Gemm(Trans::kNo, Trans::kYes, 1.0f, *cur, weights_[l], 0.0f, act);
        BiasForward(biases_[l], act);
        const bool relu = l + 1 < layers || config_.final_relu;
        if (relu) {
            ReluForward(act);
        }
        cur = &act;
    }
    out = acts_.back();
}

void
Mlp::Backward(const Matrix& grad_out, Matrix& grad_in)
{
    NEO_TRACE_SPAN("mlp_backward", "mlp_bwd");
    const size_t layers = weights_.size();
    NEO_REQUIRE(grad_out.cols() == OutputDim(), "grad_out dim mismatch");
    Matrix grad = grad_out;
    for (size_t l = layers; l-- > 0;) {
        const bool relu = l + 1 < layers || config_.final_relu;
        if (relu) {
            ReluBackward(acts_[l], grad);
        }
        // dW += grad^T * input ; db += column sums of grad
        Gemm(Trans::kYes, Trans::kNo, 1.0f, grad, inputs_[l], 1.0f,
             w_grads_[l]);
        BiasBackward(grad, b_grads_[l]);
        // grad_in = grad * W
        Matrix next(grad.rows(), weights_[l].cols());
        Gemm(Trans::kNo, Trans::kNo, 1.0f, grad, weights_[l], 0.0f, next);
        grad = std::move(next);
    }
    grad_in = std::move(grad);
}

void
Mlp::ZeroGrads()
{
    for (auto& g : w_grads_) {
        g.Zero();
    }
    for (auto& g : b_grads_) {
        g.Zero();
    }
}

size_t
Mlp::NumParams() const
{
    size_t total = 0;
    for (size_t l = 0; l < weights_.size(); l++) {
        total += weights_[l].size() + biases_[l].size();
    }
    return total;
}

double
Mlp::FlopsPerSample() const
{
    double flops = 0.0;
    for (const auto& w : weights_) {
        flops += 2.0 * static_cast<double>(w.rows()) * w.cols();
    }
    return flops;
}

std::vector<size_t>
Mlp::RegisterParams(DenseOptimizer& opt) const
{
    std::vector<size_t> slots;
    slots.reserve(weights_.size() * 2);
    for (size_t l = 0; l < weights_.size(); l++) {
        slots.push_back(opt.Register(weights_[l].rows(), weights_[l].cols()));
        slots.push_back(opt.Register(1, biases_[l].cols()));
    }
    return slots;
}

void
Mlp::ApplyOptimizer(DenseOptimizer& opt, const std::vector<size_t>& slots)
{
    NEO_REQUIRE(slots.size() == weights_.size() * 2,
                "slot count mismatch");
    for (size_t l = 0; l < weights_.size(); l++) {
        opt.Step(slots[2 * l], weights_[l], w_grads_[l]);
        opt.Step(slots[2 * l + 1], biases_[l], b_grads_[l]);
    }
}

size_t
Mlp::GradCount() const
{
    return NumParams();
}

void
Mlp::PackGrads(float* out) const
{
    size_t pos = 0;
    for (size_t l = 0; l < weights_.size(); l++) {
        std::copy(w_grads_[l].data(), w_grads_[l].data() + w_grads_[l].size(),
                  out + pos);
        pos += w_grads_[l].size();
        std::copy(b_grads_[l].data(), b_grads_[l].data() + b_grads_[l].size(),
                  out + pos);
        pos += b_grads_[l].size();
    }
}

void
Mlp::UnpackGrads(const float* in)
{
    size_t pos = 0;
    for (size_t l = 0; l < weights_.size(); l++) {
        std::copy(in + pos, in + pos + w_grads_[l].size(),
                  w_grads_[l].data());
        pos += w_grads_[l].size();
        std::copy(in + pos, in + pos + b_grads_[l].size(),
                  b_grads_[l].data());
        pos += b_grads_[l].size();
    }
}

void
Mlp::ScaleGrads(float s)
{
    for (auto& g : w_grads_) {
        g.Scale(s);
    }
    for (auto& g : b_grads_) {
        g.Scale(s);
    }
}

bool
Mlp::Identical(const Mlp& a, const Mlp& b)
{
    if (a.weights_.size() != b.weights_.size()) {
        return false;
    }
    for (size_t l = 0; l < a.weights_.size(); l++) {
        if (!Matrix::Identical(a.weights_[l], b.weights_[l]) ||
            !Matrix::Identical(a.biases_[l], b.biases_[l])) {
            return false;
        }
    }
    return true;
}

void
Mlp::Save(BinaryWriter& writer) const
{
    writer.Write<uint32_t>(0x4D4C5030u);  // 'MLP0'
    writer.Write<uint64_t>(weights_.size());
    for (size_t l = 0; l < weights_.size(); l++) {
        writer.Write<uint64_t>(weights_[l].rows());
        writer.Write<uint64_t>(weights_[l].cols());
        writer.WriteVector(weights_[l].vec());
        writer.WriteVector(biases_[l].vec());
    }
}

void
Mlp::Load(BinaryReader& reader)
{
    const uint32_t magic = reader.Read<uint32_t>();
    NEO_REQUIRE(magic == 0x4D4C5030u, "bad MLP magic");
    const uint64_t layers = reader.Read<uint64_t>();
    NEO_REQUIRE(layers == weights_.size(), "checkpoint layer count mismatch");
    for (size_t l = 0; l < layers; l++) {
        const uint64_t rows = reader.Read<uint64_t>();
        const uint64_t cols = reader.Read<uint64_t>();
        NEO_REQUIRE(rows == weights_[l].rows() && cols == weights_[l].cols(),
                    "checkpoint layer shape mismatch");
        weights_[l].vec() =
            reader.ReadVector<float, AlignedAllocator<float>>();
        biases_[l].vec() =
            reader.ReadVector<float, AlignedAllocator<float>>();
        NEO_REQUIRE(weights_[l].vec().size() == rows * cols,
                    "checkpoint weight size mismatch");
        NEO_REQUIRE(biases_[l].vec().size() == rows,
                    "checkpoint bias size mismatch");
    }
}

}  // namespace neo::ops
