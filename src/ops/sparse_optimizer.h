/**
 * @file
 * Exact sparse optimizers for embedding tables (Sec. 4.1.2).
 *
 * Large-batch synchronous training updates many embedding rows per step,
 * with duplicates inside a batch. The "exact" strategy sorts the sparse
 * update by row id, merges gradients of duplicate rows, and applies a
 * single optimizer step per unique row — making the update independent of
 * input order and free of read-modify-write races, which in turn gives
 * bitwise run-to-run reproducibility even for nonlinear optimizers
 * (AdaGrad, Adam).
 *
 * A "naive" per-occurrence application path is kept as an ablation: for
 * nonlinear optimizers it is order-dependent, demonstrating why exactness
 * matters.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ops/embedding_table.h"

namespace neo::ops {

/** Supported sparse optimizer algorithms. */
enum class SparseOptimizerKind {
    kSgd,
    kAdaGrad,
    /** AdaGrad with one shared moment per row (Sec. 4.1.4), saving ~50%. */
    kRowWiseAdaGrad,
    kAdam,
};

/** Name string for logging / bench output. */
const char* SparseOptimizerKindName(SparseOptimizerKind kind);

/** Hyper-parameters shared by all sparse optimizers. */
struct SparseOptimizerConfig {
    SparseOptimizerKind kind = SparseOptimizerKind::kRowWiseAdaGrad;
    float learning_rate = 0.01f;
    float eps = 1e-8f;
    float beta1 = 0.9f;   // Adam only
    float beta2 = 0.999f; // Adam only
};

/**
 * One sparse-update row: a row id plus a pointer to its D-wide gradient.
 * Pointers refer into caller-owned gradient storage.
 */
struct SparseGradRef {
    int64_t row;
    const float* grad;
};

/** Optimizer state and update logic for a single embedding table. */
class SparseOptimizer
{
  public:
    /**
     * @param config Algorithm and hyper-parameters.
     * @param rows Table hash size (state is allocated accordingly).
     * @param dim Embedding dimension.
     */
    SparseOptimizer(const SparseOptimizerConfig& config, int64_t rows,
                    int64_t dim);

    /**
     * Exact fused update: sort + merge duplicate rows, then apply one
     * optimizer step per unique row. Deterministic and order-invariant.
     * Unique-row groups are applied in parallel over the shared pool —
     * groups touch disjoint table rows and disjoint optimizer state, and
     * each group's merge order is fixed by the global sort, so the result
     * is bit-identical to the serial path at any thread count.
     */
    void ApplyExact(EmbeddingTable& table,
                    std::span<const SparseGradRef> grads);

    /**
     * Naive update: apply one optimizer step per occurrence in the given
     * order. Order-dependent for nonlinear optimizers; kept for ablation.
     */
    void ApplyNaive(EmbeddingTable& table,
                    std::span<const SparseGradRef> grads);

    /** Bytes of optimizer state (the F1 capacity study tracks this). */
    size_t StateBytes() const;

    /**
     * Floats of optimizer state per row in the Export/ImportRowState
     * layout: 0 (SGD), dim (AdaGrad), 1 (row-wise AdaGrad), 2*dim + 1
     * (Adam: m, v, step). Identical across ranks for a given config, so
     * checkpoints and rollback snapshots can move row state between
     * differently-sharded optimizers of the same kind.
     */
    size_t StateFloatsPerRow() const;

    /** Copy row `row`'s state into out[0..StateFloatsPerRow()). */
    void ExportRowState(int64_t row, float* out) const;

    /** Restore row `row`'s state from ExportRowState's layout. */
    void ImportRowState(int64_t row, const float* in);

    const SparseOptimizerConfig& config() const { return config_; }

    /** Row-wise moment accessor (row-wise AdaGrad), for tests. */
    float RowMoment(int64_t row) const;

  private:
    /**
     * Apply one merged-gradient step to a single row. `row_buf` is a
     * dim-sized scratch for the widened row (per-thread in parallel use).
     */
    void UpdateRow(EmbeddingTable& table, int64_t row,
                   const float* merged_grad, float* row_buf);

    SparseOptimizerConfig config_;
    int64_t rows_;
    int64_t dim_;

    /** AdaGrad: per-element accumulator (rows x dim). */
    std::vector<float> adagrad_state_;
    /** Row-wise AdaGrad: per-row accumulator (rows). */
    std::vector<float> rowwise_state_;
    /** Adam: first/second moments (rows x dim each) + per-row step. */
    std::vector<float> adam_m_;
    std::vector<float> adam_v_;
    std::vector<uint32_t> adam_step_;

    /** Scratch reused across calls to avoid per-step allocation churn. */
    std::vector<uint32_t> order_;
    std::vector<size_t> group_starts_;
    std::vector<float> row_buf_;
};

}  // namespace neo::ops
