/**
 * @file
 * Abstract row storage for embedding parameters. Training code written
 * against RowStore runs unchanged over a plain HBM-resident table, the
 * 32-way software cache fronting DDR, or UVM-style paging — the
 * hierarchical-memory training mode of Sec. 4.1.3 (used e.g. for online
 * training on fewer nodes).
 *
 * Alignment contract: implementations back rows with 64-byte-aligned
 * storage (AlignedVector; see common/aligned.h) so the SIMD microkernels
 * in src/kernels always see cache-line-aligned gather sources. The
 * `out`/`in` pointers passed by callers need not be aligned.
 */
#pragma once

#include <cstdint>

#include "ops/embedding_table.h"

namespace neo::ops {

/** Row-granular parameter storage interface. */
class RowStore
{
  public:
    virtual ~RowStore() = default;

    virtual int64_t rows() const = 0;
    virtual int64_t dim() const = 0;

    /** Copy row `row` into out[0..dim). */
    virtual void ReadRow(int64_t row, float* out) = 0;

    /** Overwrite row `row` from in[0..dim). */
    virtual void WriteRow(int64_t row, const float* in) = 0;

    /** Accumulate out[d] += weight * row[d]. */
    virtual void AccumulateRow(int64_t row, float weight, float* out) = 0;
};

/** RowStore over a plain in-memory EmbeddingTable. */
class PlainRowStore : public RowStore
{
  public:
    /** Wrap a table (owned). */
    explicit PlainRowStore(EmbeddingTable table) : table_(std::move(table))
    {
    }

    int64_t rows() const override { return table_.rows(); }
    int64_t dim() const override { return table_.dim(); }

    void
    ReadRow(int64_t row, float* out) override
    {
        table_.ReadRow(row, out);
    }

    void
    WriteRow(int64_t row, const float* in) override
    {
        table_.WriteRow(row, in);
    }

    void
    AccumulateRow(int64_t row, float weight, float* out) override
    {
        table_.AccumulateRow(row, weight, out);
    }

    EmbeddingTable& table() { return table_; }

  private:
    EmbeddingTable table_;
};

}  // namespace neo::ops
