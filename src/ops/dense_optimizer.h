/**
 * @file
 * Dense-parameter optimizers for the data-parallel MLP weights. Unlike the
 * sparse path, dense updates touch every element each step, so no
 * sort/merge is needed; determinism follows from fixed elementwise loops.
 */
#pragma once

#include <vector>

#include "common/serialize.h"
#include "tensor/matrix.h"

namespace neo::ops {

/** Supported dense optimizer algorithms. */
enum class DenseOptimizerKind {
    kSgd,
    kAdaGrad,
    kAdam,
    /** Layer-wise adaptive moments (You et al. [60]), for large-batch
     *  training where per-layer trust ratios stabilize big steps. */
    kLamb,
};

/** Hyper-parameters for dense optimizers. */
struct DenseOptimizerConfig {
    DenseOptimizerKind kind = DenseOptimizerKind::kSgd;
    float learning_rate = 0.01f;
    float momentum = 0.0f;  // SGD only
    float eps = 1e-8f;
    float beta1 = 0.9f;   // Adam only
    float beta2 = 0.999f; // Adam only
};

/**
 * Optimizer with per-parameter-slot state. Register every parameter once
 * (in a fixed order), then call Step() with the same slot each iteration.
 */
class DenseOptimizer
{
  public:
    explicit DenseOptimizer(const DenseOptimizerConfig& config)
        : config_(config) {}

    /** Allocate state for a rows x cols parameter; returns its slot id. */
    size_t Register(size_t rows, size_t cols);

    /** Apply one update: param -= f(grad, state). */
    void Step(size_t slot, Matrix& param, const Matrix& grad);

    /** Bytes of optimizer state across all slots. */
    size_t StateBytes() const;

    /** Serialize all slot state (momenta, accumulators, step counts). */
    void Save(BinaryWriter& writer) const;

    /**
     * Restore slot state saved by Save(). The receiving optimizer must
     * have the same slots registered (count and shapes); anything else is
     * rejected with a runtime_error.
     */
    void Load(BinaryReader& reader);

    const DenseOptimizerConfig& config() const { return config_; }

  private:
    struct Slot {
        std::vector<float> state1;  // momentum / adagrad accum / adam m
        std::vector<float> state2;  // adam v
        uint64_t step = 0;
    };

    DenseOptimizerConfig config_;
    std::vector<Slot> slots_;
};

}  // namespace neo::ops
