/**
 * @file
 * Multilayer perceptron used for the DLRM bottom and top arches. Each layer
 * is a Linear (weight [out, in] + bias) followed by ReLU, except the final
 * layer which is linear (the top MLP emits a single logit for BCE).
 */
#pragma once

#include <vector>

#include "common/serialize.h"
#include "ops/dense_optimizer.h"
#include "tensor/matrix.h"

namespace neo::ops {

/** Layer widths for an MLP: {in, h1, ..., out}. */
struct MlpConfig {
    std::vector<size_t> layer_sizes;
    /** Apply ReLU after the final layer too (bottom MLP does). */
    bool final_relu = false;
};

/** MLP with saved activations for a single in-flight forward/backward. */
class Mlp
{
  public:
    /** Build with deterministic He-uniform init from `rng`. */
    Mlp(const MlpConfig& config, Rng& rng);

    size_t NumLayers() const { return weights_.size(); }
    size_t InputDim() const { return config_.layer_sizes.front(); }
    size_t OutputDim() const { return config_.layer_sizes.back(); }

    /** Forward pass; saves activations for Backward(). */
    void Forward(const Matrix& x, Matrix& out);

    /**
     * Backward pass. Accumulates parameter gradients into internal grad
     * buffers (call ZeroGrads() between iterations) and writes the
     * gradient w.r.t. the input into grad_in.
     */
    void Backward(const Matrix& grad_out, Matrix& grad_in);

    /** Zero all parameter gradient buffers. */
    void ZeroGrads();

    /** Total number of scalar parameters. */
    size_t NumParams() const;

    /** Multiply-accumulate FLOPs per sample (fwd only): 2*sum(in*out). */
    double FlopsPerSample() const;

    /** Register all parameters with a dense optimizer (fixed order). */
    std::vector<size_t> RegisterParams(DenseOptimizer& opt) const;

    /** Apply optimizer steps using slots from RegisterParams(). */
    void ApplyOptimizer(DenseOptimizer& opt, const std::vector<size_t>& slots);

    /** Total gradient element count (for flat DDP-style AllReduce). */
    size_t GradCount() const;

    /** Copy all gradients into a flat buffer (fixed order). */
    void PackGrads(float* out) const;

    /** Overwrite gradients from a flat buffer (inverse of PackGrads). */
    void UnpackGrads(const float* in);

    /** Scale all gradients (e.g. 1/world for data-parallel averaging). */
    void ScaleGrads(float s);

    /** Bitwise equality of parameters (determinism tests). */
    static bool Identical(const Mlp& a, const Mlp& b);

    /** Serialize parameters. */
    void Save(BinaryWriter& writer) const;

    /** Restore parameters written by Save(). */
    void Load(BinaryReader& reader);

    Matrix& weight(size_t layer) { return weights_[layer]; }
    Matrix& bias(size_t layer) { return biases_[layer]; }
    const Matrix& weight_grad(size_t layer) const { return w_grads_[layer]; }
    const Matrix& bias_grad(size_t layer) const { return b_grads_[layer]; }

  private:
    MlpConfig config_;
    std::vector<Matrix> weights_;  // [out, in]
    std::vector<Matrix> biases_;   // [1, out]
    std::vector<Matrix> w_grads_;
    std::vector<Matrix> b_grads_;

    /** inputs_[l] = input to layer l; acts_[l] = post-activation output. */
    std::vector<Matrix> inputs_;
    std::vector<Matrix> acts_;
};

}  // namespace neo::ops
