#include "ops/sparse_optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neo::ops {

namespace {

/**
 * Unique-row groups per ApplyExact chunk. Fixed (thread-count-independent)
 * chunking; below one chunk the update runs serially.
 */
constexpr size_t kExactGroupGrain = 64;

}  // namespace

const char*
SparseOptimizerKindName(SparseOptimizerKind kind)
{
    switch (kind) {
      case SparseOptimizerKind::kSgd: return "sgd";
      case SparseOptimizerKind::kAdaGrad: return "adagrad";
      case SparseOptimizerKind::kRowWiseAdaGrad: return "rowwise_adagrad";
      case SparseOptimizerKind::kAdam: return "adam";
    }
    return "unknown";
}

SparseOptimizer::SparseOptimizer(const SparseOptimizerConfig& config,
                                 int64_t rows, int64_t dim)
    : config_(config), rows_(rows), dim_(dim)
{
    NEO_REQUIRE(rows_ > 0 && dim_ > 0, "bad optimizer shape");
    const size_t n = static_cast<size_t>(rows_) * dim_;
    switch (config_.kind) {
      case SparseOptimizerKind::kSgd:
        break;
      case SparseOptimizerKind::kAdaGrad:
        adagrad_state_.assign(n, 0.0f);
        break;
      case SparseOptimizerKind::kRowWiseAdaGrad:
        rowwise_state_.assign(static_cast<size_t>(rows_), 0.0f);
        break;
      case SparseOptimizerKind::kAdam:
        adam_m_.assign(n, 0.0f);
        adam_v_.assign(n, 0.0f);
        adam_step_.assign(static_cast<size_t>(rows_), 0);
        break;
    }
    row_buf_.resize(static_cast<size_t>(dim_));
}

size_t
SparseOptimizer::StateBytes() const
{
    return adagrad_state_.size() * sizeof(float) +
           rowwise_state_.size() * sizeof(float) +
           adam_m_.size() * sizeof(float) + adam_v_.size() * sizeof(float) +
           adam_step_.size() * sizeof(uint32_t);
}

size_t
SparseOptimizer::StateFloatsPerRow() const
{
    const size_t d = static_cast<size_t>(dim_);
    switch (config_.kind) {
      case SparseOptimizerKind::kSgd: return 0;
      case SparseOptimizerKind::kAdaGrad: return d;
      case SparseOptimizerKind::kRowWiseAdaGrad: return 1;
      // m, v, and the per-row step count (stored as a float: exact for
      // any realistic step count, and it keeps the layout homogeneous).
      case SparseOptimizerKind::kAdam: return 2 * d + 1;
    }
    return 0;
}

void
SparseOptimizer::ExportRowState(int64_t row, float* out) const
{
    NEO_REQUIRE(row >= 0 && row < rows_, "row out of range");
    const size_t d = static_cast<size_t>(dim_);
    const size_t r = static_cast<size_t>(row);
    switch (config_.kind) {
      case SparseOptimizerKind::kSgd:
        break;
      case SparseOptimizerKind::kAdaGrad:
        std::copy_n(adagrad_state_.data() + r * d, d, out);
        break;
      case SparseOptimizerKind::kRowWiseAdaGrad:
        out[0] = rowwise_state_[r];
        break;
      case SparseOptimizerKind::kAdam:
        std::copy_n(adam_m_.data() + r * d, d, out);
        std::copy_n(adam_v_.data() + r * d, d, out + d);
        out[2 * d] = static_cast<float>(adam_step_[r]);
        break;
    }
}

void
SparseOptimizer::ImportRowState(int64_t row, const float* in)
{
    NEO_REQUIRE(row >= 0 && row < rows_, "row out of range");
    const size_t d = static_cast<size_t>(dim_);
    const size_t r = static_cast<size_t>(row);
    switch (config_.kind) {
      case SparseOptimizerKind::kSgd:
        break;
      case SparseOptimizerKind::kAdaGrad:
        std::copy_n(in, d, adagrad_state_.data() + r * d);
        break;
      case SparseOptimizerKind::kRowWiseAdaGrad:
        rowwise_state_[r] = in[0];
        break;
      case SparseOptimizerKind::kAdam:
        std::copy_n(in, d, adam_m_.data() + r * d);
        std::copy_n(in + d, d, adam_v_.data() + r * d);
        adam_step_[r] = static_cast<uint32_t>(in[2 * d]);
        break;
    }
}

float
SparseOptimizer::RowMoment(int64_t row) const
{
    NEO_REQUIRE(config_.kind == SparseOptimizerKind::kRowWiseAdaGrad,
                "RowMoment is row-wise AdaGrad state");
    NEO_REQUIRE(row >= 0 && row < rows_, "row out of range");
    return rowwise_state_[static_cast<size_t>(row)];
}

void
SparseOptimizer::UpdateRow(EmbeddingTable& table, int64_t row,
                           const float* g, float* row_buf)
{
    const float lr = config_.learning_rate;
    const float eps = config_.eps;
    const size_t d = static_cast<size_t>(dim_);
    table.ReadRow(row, row_buf);
    float* w = row_buf;

    const kernels::KernelTable& kt = kernels::Active();
    switch (config_.kind) {
      case SparseOptimizerKind::kSgd: {
        // w += (-lr) * g: IEEE sign flip and subtract-vs-add-negated are
        // exact, so this is bitwise the classic w[i] -= lr * g[i].
        kt.axpy_f32(-lr, g, w, d);
        break;
      }
      case SparseOptimizerKind::kAdaGrad: {
        float* state = adagrad_state_.data() + static_cast<size_t>(row) * d;
        kt.adagrad_update_f32(lr, eps, g, state, w, d);
        break;
      }
      case SparseOptimizerKind::kRowWiseAdaGrad: {
        // m' = m + (1/D) * sum_j g_j^2, one scalar per row (Sec. 4.1.4).
        // The sum runs the canonical width-16 strided reduction schedule.
        const float sq_sum = kt.sum_squares_f32(g, d);
        float& m = rowwise_state_[static_cast<size_t>(row)];
        m += sq_sum / static_cast<float>(d);
        const float scale = lr / (std::sqrt(m) + eps);
        kt.axpy_f32(-scale, g, w, d);
        break;
      }
      case SparseOptimizerKind::kAdam: {
        const float b1 = config_.beta1;
        const float b2 = config_.beta2;
        uint32_t& t = adam_step_[static_cast<size_t>(row)];
        t++;
        const float bc1 =
            1.0f - std::pow(b1, static_cast<float>(t));
        const float bc2 =
            1.0f - std::pow(b2, static_cast<float>(t));
        float* m = adam_m_.data() + static_cast<size_t>(row) * d;
        float* v = adam_v_.data() + static_cast<size_t>(row) * d;
        for (size_t i = 0; i < d; i++) {
            m[i] = b1 * m[i] + (1.0f - b1) * g[i];
            v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
            const float m_hat = m[i] / bc1;
            const float v_hat = v[i] / bc2;
            w[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
        }
        break;
      }
    }
    table.WriteRow(row, row_buf);
}

void
SparseOptimizer::ApplyExact(EmbeddingTable& table,
                            std::span<const SparseGradRef> grads)
{
    // Sparse updates live in the paper's embedding-backward phase, so
    // they book as emb_bwd rather than the dense optimizer bucket.
    NEO_TRACE_SPAN("sparse_apply_exact", "emb_bwd");
    NEO_REQUIRE(table.rows() == rows_ && table.dim() == dim_,
                "optimizer/table shape mismatch");
    if (grads.empty()) {
        return;
    }

    // Stable sort of occurrence positions by row id. Stability plus the
    // commutative merge (sum in sorted-position order) makes the final
    // result invariant to the original occurrence order.
    order_.resize(grads.size());
    for (uint32_t i = 0; i < grads.size(); i++) {
        order_[i] = i;
    }
    std::stable_sort(order_.begin(), order_.end(),
                     [&](uint32_t a, uint32_t b) {
                         return grads[a].row < grads[b].row;
                     });

    // Scan the sorted occurrences once (serially) to find the unique-row
    // group boundaries and validate row ids.
    group_starts_.clear();
    size_t i = 0;
    while (i < order_.size()) {
        const int64_t row = grads[order_[i]].row;
        NEO_CHECK(row >= 0 && row < rows_, "gradient row out of range");
        group_starts_.push_back(i);
        size_t j = i;
        while (j < order_.size() && grads[order_[j]].row == row) {
            j++;
        }
        i = j;
    }
    group_starts_.push_back(order_.size());

    // Apply groups in parallel: each group owns one table row and its
    // optimizer state, groups are disjoint, and the per-group merge order
    // is fixed by the global sort — bit-identical at any thread count.
    const size_t d = static_cast<size_t>(dim_);
    const size_t num_groups = group_starts_.size() - 1;
    static obs::Counter& update_calls =
        obs::MetricsRegistry::Get().GetCounter(
            "neo.kernels.sparse_update_calls");
    update_calls.Add(num_groups);
    const kernels::KernelTable& kt = kernels::Active();
    ParallelFor(0, num_groups, kExactGroupGrain, [&](size_t g0, size_t g1) {
        std::vector<float> merged(d);
        std::vector<float> row_buf(d);
        for (size_t g = g0; g < g1; g++) {
            const size_t s = group_starts_[g];
            const size_t e = group_starts_[g + 1];
            const int64_t row = grads[order_[s]].row;
            if (e - s > 1) {
                // Floating-point sums depend on order, so canonicalize the
                // duplicate occurrences (lexicographic by gradient values)
                // before merging; the merged sum is then invariant to any
                // permutation of the input batch. The sort touches only
                // this group's order_ subrange, disjoint across groups.
                std::sort(order_.begin() + s, order_.begin() + e,
                          [&](uint32_t a, uint32_t b) {
                              return std::lexicographical_compare(
                                  grads[a].grad, grads[a].grad + d,
                                  grads[b].grad, grads[b].grad + d);
                          });
            }
            std::fill(merged.begin(), merged.end(), 0.0f);
            for (size_t k = s; k < e; k++) {
                kt.add_f32(grads[order_[k]].grad, merged.data(), d);
            }
            UpdateRow(table, row, merged.data(), row_buf.data());
        }
    });
}

void
SparseOptimizer::ApplyNaive(EmbeddingTable& table,
                            std::span<const SparseGradRef> grads)
{
    NEO_TRACE_SPAN("sparse_apply_naive", "emb_bwd");
    NEO_REQUIRE(table.rows() == rows_ && table.dim() == dim_,
                "optimizer/table shape mismatch");
    for (const auto& ref : grads) {
        NEO_CHECK(ref.row >= 0 && ref.row < rows_,
                  "gradient row out of range");
        UpdateRow(table, ref.row, ref.grad, row_buf_.data());
    }
}

}  // namespace neo::ops
