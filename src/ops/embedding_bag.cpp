#include "ops/embedding_bag.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neo::ops {

namespace {

/**
 * Batch rows per forward shard. Each shard pools a contiguous sample range
 * of one table, so shards write disjoint output rows and the partitioning
 * (table x fixed batch chunks) is independent of the thread count.
 */
constexpr size_t kForwardBatchGrain = 64;

/** One (table, sample-range) unit of forward work. */
struct ForwardShard {
    size_t table;
    size_t batch_begin;
    size_t batch_end;
    size_t index_offset;  // offset of batch_begin's first index
};

}  // namespace

uint64_t
EmbeddingBagCollection::TableSeed(uint64_t base_seed, size_t table)
{
    SplitMix64 sm(base_seed + 0xABCD0000ull + table);
    return sm.Next();
}

EmbeddingBagCollection::EmbeddingBagCollection(
    const std::vector<TableSpec>& specs,
    const SparseOptimizerConfig& optimizer, uint64_t seed)
{
    tables_.reserve(specs.size());
    optimizers_.reserve(specs.size());
    for (size_t t = 0; t < specs.size(); t++) {
        const auto& spec = specs[t];
        tables_.emplace_back(spec.rows, spec.dim, spec.precision);
        tables_.back().InitDeterministic(TableSeed(seed, t), 0, 0, spec.dim);
        optimizers_.emplace_back(optimizer, spec.rows, spec.dim);
    }
}

void
EmbeddingBagCollection::Forward(std::span<const TableInput> inputs,
                                size_t batch,
                                std::vector<Matrix>& outputs) const
{
    NEO_TRACE_SPAN("emb_bag_forward", "emb_fwd");
    NEO_REQUIRE(inputs.size() == tables_.size(),
                "one input per table required");
    outputs.resize(tables_.size());
    // Serial pass: validate inputs, size outputs, and carve the fused
    // (table x batch) iteration space into shards. Offsets into the
    // combined indices are prefix sums of lengths, so they are computed
    // here once and each shard starts from a known position.
    std::vector<ForwardShard> shards;
    for (size_t t = 0; t < tables_.size(); t++) {
        const EmbeddingTable& table = tables_[t];
        const TableInput& in = inputs[t];
        NEO_REQUIRE(in.lengths.size() == batch, "lengths size mismatch");
        Matrix& out = outputs[t];
        if (out.rows() != batch ||
            out.cols() != static_cast<size_t>(table.dim())) {
            out = Matrix(batch, static_cast<size_t>(table.dim()));
        } else {
            out.Zero();
        }
        size_t offset = 0;
        for (size_t b = 0; b < batch; b++) {
            if (b % kForwardBatchGrain == 0) {
                shards.push_back(
                    {t, b, std::min(b + kForwardBatchGrain, batch), offset});
            }
            const uint32_t len = in.lengths[b];
            NEO_CHECK(offset + len <= in.indices.size(),
                      "indices shorter than lengths imply");
            offset += len;
        }
        NEO_CHECK(offset == in.indices.size(),
                  "indices longer than lengths imply");
    }
    // Fused parallel loop over all local tables (the CPU analogue of the
    // single batched CUDA kernel in Fig. 7). Shards write disjoint output
    // rows and only read table parameters, so any thread count produces
    // the serial result bit-for-bit. Each bag pools through the active
    // SIMD kernel tier's fused gather+accumulate.
    static obs::Counter& pool_calls =
        obs::MetricsRegistry::Get().GetCounter("neo.kernels.pool_calls");
    ParallelFor(0, shards.size(), 1, [&](size_t s0, size_t s1) {
        uint64_t bags = 0;
        for (size_t s = s0; s < s1; s++) {
            const ForwardShard& shard = shards[s];
            const EmbeddingTable& table = tables_[shard.table];
            const TableInput& in = inputs[shard.table];
            Matrix& out = outputs[shard.table];
            size_t offset = shard.index_offset;
            for (size_t b = shard.batch_begin; b < shard.batch_end; b++) {
                const uint32_t len = in.lengths[b];
                table.PoolRows(in.indices.data() + offset, len, out.Row(b));
                offset += len;
            }
            bags += shard.batch_end - shard.batch_begin;
        }
        pool_calls.Add(bags);
    });
}

void
EmbeddingBagCollection::CollectGrads(const TableInput& input, size_t batch,
                                     const Matrix& grad,
                                     std::vector<SparseGradRef>& refs) const
{
    NEO_REQUIRE(input.lengths.size() == batch, "lengths size mismatch");
    NEO_REQUIRE(grad.rows() == batch, "grad batch mismatch");
    refs.clear();
    refs.reserve(input.indices.size());
    size_t offset = 0;
    for (size_t b = 0; b < batch; b++) {
        const float* g = grad.Row(b);
        const uint32_t len = input.lengths[b];
        for (uint32_t i = 0; i < len; i++) {
            refs.push_back({input.indices[offset + i], g});
        }
        offset += len;
    }
    NEO_CHECK(offset == input.indices.size(), "indices/lengths mismatch");
}

void
EmbeddingBagCollection::BackwardAndUpdate(std::span<const TableInput> inputs,
                                          size_t batch,
                                          const std::vector<Matrix>& grads)
{
    NEO_TRACE_SPAN("emb_bag_backward_update", "emb_bwd");
    NEO_REQUIRE(inputs.size() == tables_.size() &&
                grads.size() == tables_.size(),
                "one input and grad per table required");
    std::vector<SparseGradRef> refs;
    for (size_t t = 0; t < tables_.size(); t++) {
        CollectGrads(inputs[t], batch, grads[t], refs);
        optimizers_[t].ApplyExact(tables_[t], refs);
    }
}

void
EmbeddingBagCollection::BackwardAndUpdateNaive(
    std::span<const TableInput> inputs, size_t batch,
    const std::vector<Matrix>& grads)
{
    NEO_REQUIRE(inputs.size() == tables_.size() &&
                grads.size() == tables_.size(),
                "one input and grad per table required");
    std::vector<SparseGradRef> refs;
    for (size_t t = 0; t < tables_.size(); t++) {
        CollectGrads(inputs[t], batch, grads[t], refs);
        optimizers_[t].ApplyNaive(tables_[t], refs);
    }
}

size_t
EmbeddingBagCollection::ParameterBytes() const
{
    size_t total = 0;
    for (const auto& t : tables_) {
        total += t.ParameterBytes();
    }
    return total;
}

size_t
EmbeddingBagCollection::OptimizerStateBytes() const
{
    size_t total = 0;
    for (const auto& o : optimizers_) {
        total += o.StateBytes();
    }
    return total;
}

void
EmbeddingBagCollection::Save(BinaryWriter& writer) const
{
    writer.Write<uint32_t>(0x45424143u);  // 'EBAC'
    writer.Write<uint64_t>(tables_.size());
    for (const auto& t : tables_) {
        t.Save(writer);
    }
}

void
EmbeddingBagCollection::Load(BinaryReader& reader)
{
    const uint32_t magic = reader.Read<uint32_t>();
    NEO_REQUIRE(magic == 0x45424143u, "bad collection magic");
    const uint64_t n = reader.Read<uint64_t>();
    NEO_REQUIRE(n == tables_.size(), "checkpoint table count mismatch");
    for (size_t t = 0; t < tables_.size(); t++) {
        EmbeddingTable loaded = EmbeddingTable::Load(reader);
        NEO_REQUIRE(loaded.rows() == tables_[t].rows() &&
                    loaded.dim() == tables_[t].dim(),
                    "checkpoint table shape mismatch");
        tables_[t] = std::move(loaded);
    }
}

}  // namespace neo::ops
