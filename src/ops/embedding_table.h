/**
 * @file
 * Embedding table storage with selectable row precision.
 *
 * The paper stores tables in FP32 or FP16 (Sec. 5.3.2: FP16 halves the
 * model footprint, giving the sharder headroom). Rows are stored
 * contiguously; FP16 rows are widened to FP32 for arithmetic and re-rounded
 * on write-back, matching mixed-precision embedding storage [57].
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/float_types.h"
#include "common/rng.h"
#include "common/serialize.h"

namespace neo::ops {

/** One embedding table of `rows` x `dim` parameters. */
class EmbeddingTable
{
  public:
    /**
     * @param rows Hash size H.
     * @param dim Embedding dimension D.
     * @param precision kFp32 or kFp16 row storage.
     */
    EmbeddingTable(int64_t rows, int64_t dim,
                   Precision precision = Precision::kFp32);

    int64_t rows() const { return rows_; }
    int64_t dim() const { return dim_; }
    Precision precision() const { return precision_; }

    /** Bytes of parameter storage. */
    size_t ParameterBytes() const;

    /** Deterministic uniform init in [-1/sqrt(dim), 1/sqrt(dim)]. */
    void InitUniform(Rng& rng);

    /**
     * Shard-stable initialization: every logical (row, col) of the full
     * table gets a value derived only from (table_seed, global row, col),
     * so a row/column shard initializes identically to the corresponding
     * slice of the unsharded table. Required for verifying distributed
     * training against the single-process reference.
     *
     * @param table_seed Per-table seed.
     * @param row_offset Global row index of local row 0.
     * @param col_offset Global column index of local column 0.
     * @param full_dim The unsharded table's dimension D.
     */
    void InitDeterministic(uint64_t table_seed, int64_t row_offset,
                           int64_t col_offset, int64_t full_dim);

    /** Copy row `row` into `out[0..dim)`, widening if needed. */
    void ReadRow(int64_t row, float* out) const;

    /** Overwrite row `row` from `in[0..dim)`, rounding if needed. */
    void WriteRow(int64_t row, const float* in);

    /** Accumulate `out[d] += weight * row[d]` without materializing. */
    void AccumulateRow(int64_t row, float weight, float* out) const;

    /**
     * Fused sum pooling of one bag: out[d] += sum_i row(indices[i])[d],
     * indices in occurrence order. Dispatches to the active SIMD kernel
     * tier; bitwise identical to `count` AccumulateRow(weight=1) calls.
     */
    void PoolRows(const int64_t* indices, size_t count, float* out) const;

    /** Exact bitwise equality of stored parameters (determinism tests). */
    static bool Identical(const EmbeddingTable& a, const EmbeddingTable& b);

    /** Max |a-b| over all parameters after widening. */
    static float MaxAbsDiff(const EmbeddingTable& a, const EmbeddingTable& b);

    /** Serialize parameters (and precision tag). */
    void Save(BinaryWriter& writer) const;

    /** Deserialize; shape and precision must match the checkpoint. */
    static EmbeddingTable Load(BinaryReader& reader);

  private:
    int64_t rows_;
    int64_t dim_;
    Precision precision_;
    /**
     * Row storage is 64-byte aligned (AlignedVector) so the SIMD kernels
     * see cache-line-aligned gather sources.
     */
    /** FP32 storage (used when precision_ == kFp32). */
    AlignedVector<float> data_f32_;
    /** FP16 storage as raw half bits (used when precision_ == kFp16). */
    AlignedVector<uint16_t> data_f16_;
};

}  // namespace neo::ops
