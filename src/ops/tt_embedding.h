/**
 * @file
 * Tensor-train compressed embedding table (TT-Rec, Yin et al. [59];
 * cited by Sec. 4.1.4 as one of the paper's memory-saving techniques).
 *
 * The H x D table is never materialized: row indices factorize over a
 * mixed radix (i1, i2, i3) and columns over (c1, c2, c3), and the
 * embedding is the product of three small cores
 *
 *   E[i, :] = G1[i1] . G2[i2] . G3[i3]
 *
 * with TT-ranks (r1, r2) controlling the accuracy/compression trade-off.
 * Parameters drop from H*D to h1*d1*r1 + h2*r1*d2*r2 + h3*r2*d3 — often
 * 100-1000x for tall tables. Rows are reconstructed on the fly and core
 * gradients are produced by the chain rule, so TT tables train in place
 * of plain tables.
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace neo::ops {

/** Shape configuration for a 3-core TT factorization. */
struct TtShape {
    /** Row radices; h1*h2*h3 >= rows. */
    std::array<int64_t, 3> row_factors = {0, 0, 0};
    /** Column radices; d1*d2*d3 == dim. */
    std::array<int64_t, 3> col_factors = {0, 0, 0};
    /** TT ranks (r1, r2). */
    std::array<int64_t, 2> ranks = {8, 8};

    /**
     * Factor `rows` x `dim` automatically: row factors near the cube
     * root of rows, column factors from dim's divisors.
     */
    static TtShape Auto(int64_t rows, int64_t dim, int64_t rank = 8);

    int64_t PaddedRows() const
    {
        return row_factors[0] * row_factors[1] * row_factors[2];
    }
    int64_t Dim() const
    {
        return col_factors[0] * col_factors[1] * col_factors[2];
    }
};

/** Trainable TT-compressed embedding table. */
class TtEmbeddingTable
{
  public:
    /**
     * @param rows Logical hash size H.
     * @param dim Embedding dimension D.
     * @param shape Factorization (use TtShape::Auto for defaults).
     * @param seed Deterministic core initialization.
     */
    TtEmbeddingTable(int64_t rows, int64_t dim, const TtShape& shape,
                     uint64_t seed);

    int64_t rows() const { return rows_; }
    int64_t dim() const { return dim_; }
    const TtShape& shape() const { return shape_; }

    /** Parameters stored across the three cores. */
    size_t NumParams() const;

    /** H*D / NumParams(): the headline compression factor. */
    double CompressionRatio() const;

    /** Reconstruct one row into out[0..dim). */
    void ReadRow(int64_t row, float* out) const;

    /** Accumulate out[c] += weight * E[row, c]. */
    void AccumulateRow(int64_t row, float weight, float* out) const;

    /**
     * Apply one SGD step for a single row's gradient: backpropagates
     * through the reconstruction into all three cores.
     *
     * @param row Logical row index.
     * @param grad dL/dE[row, :], length dim.
     * @param lr Learning rate.
     */
    void ApplyRowGradient(int64_t row, const float* grad, float lr);

    /** Exact parameter equality (determinism tests). */
    static bool Identical(const TtEmbeddingTable& a,
                          const TtEmbeddingTable& b);

  private:
    /** Mixed-radix decomposition of a row index. */
    std::array<int64_t, 3> Decompose(int64_t row) const;

    /** Core slice pointers: core k's slab for sub-index ik. */
    float* CoreSlice(int k, int64_t sub_index);
    const float* CoreSlice(int k, int64_t sub_index) const;

    /**
     * Reconstruct intermediates for one row:
     * t1 = G1[i1] (d1 x r1), t12 = t1 . G2[i2] ((d1*d2) x r2),
     * row = t12 . G3[i3] ((d1*d2*d3)).
     * Outputs are written into caller-provided scratch.
     */
    void Reconstruct(const std::array<int64_t, 3>& sub,
                     std::vector<float>& t12, float* out) const;

    int64_t rows_;
    int64_t dim_;
    TtShape shape_;
    /**
     * Core storage. Core sizes per sub-index slab:
     *  core 0: d1 * r1;  core 1: r1 * d2 * r2;  core 2: r2 * d3.
     */
    std::array<std::vector<float>, 3> cores_;
};

}  // namespace neo::ops
