/**
 * @file
 * Fused multi-table pooled embedding lookup (Sec. 4.1.1, FBGEMM-style).
 *
 * DLRMs have hundreds to thousands of embedding tables; launching one
 * lookup per table wastes parallelism and launch overhead. The collection
 * processes all local tables in one fused call over the combined
 * lengths+indices input format (Sec. 4.4), and fuses the backward pass with
 * the sparse optimizer so per-occurrence gradients are never materialized
 * to memory (saving a factor of the pooling size L).
 */
#pragma once

#include <span>
#include <vector>

#include "ops/embedding_table.h"
#include "ops/sparse_optimizer.h"
#include "tensor/matrix.h"

namespace neo::ops {

/**
 * One table's sparse input for a batch, in lengths format:
 * lengths[b] = number of indices for sample b; indices holds the
 * concatenation of all samples' indices.
 */
struct TableInput {
    std::span<const uint32_t> lengths;
    std::span<const int64_t> indices;
};

/** Shape/precision spec for one table in a collection. */
struct TableSpec {
    int64_t rows = 0;
    int64_t dim = 0;
    Precision precision = Precision::kFp32;
};

/**
 * A set of embedding tables trained together with a shared sparse-optimizer
 * configuration (each table gets its own optimizer state).
 */
class EmbeddingBagCollection
{
  public:
    /**
     * @param specs Table shapes.
     * @param optimizer Shared optimizer hyper-parameters.
     * @param seed Base seed; table t initializes from TableSeed(seed, t)
     *   with the shard-stable scheme (EmbeddingTable::InitDeterministic).
     */
    EmbeddingBagCollection(const std::vector<TableSpec>& specs,
                           const SparseOptimizerConfig& optimizer,
                           uint64_t seed);

    /** Per-table seed derivation shared with the distributed trainer. */
    static uint64_t TableSeed(uint64_t base_seed, size_t table);

    size_t NumTables() const { return tables_.size(); }
    EmbeddingTable& table(size_t t) { return tables_[t]; }
    const EmbeddingTable& table(size_t t) const { return tables_[t]; }
    SparseOptimizer& optimizer(size_t t) { return optimizers_[t]; }

    /**
     * Fused forward: sum-pool each table's rows per sample.
     *
     * @param inputs One TableInput per table (lengths sized `batch`).
     * @param batch Number of samples.
     * @param outputs Resized to one batch x dim_t matrix per table.
     */
    void Forward(std::span<const TableInput> inputs, size_t batch,
                 std::vector<Matrix>& outputs) const;

    /**
     * Fused backward + exact optimizer update. For sum pooling the
     * gradient of every index occurrence of sample b equals grads[t].Row(b);
     * occurrences are merged per row before the optimizer step.
     */
    void BackwardAndUpdate(std::span<const TableInput> inputs, size_t batch,
                           const std::vector<Matrix>& grads);

    /** Ablation: per-occurrence (order-dependent) update path. */
    void BackwardAndUpdateNaive(std::span<const TableInput> inputs,
                                size_t batch,
                                const std::vector<Matrix>& grads);

    /** Total parameter bytes across tables. */
    size_t ParameterBytes() const;

    /** Total optimizer-state bytes across tables. */
    size_t OptimizerStateBytes() const;

    /** Serialize all tables (not optimizer state). */
    void Save(BinaryWriter& writer) const;

    /** Restore table parameters from a checkpoint written by Save(). */
    void Load(BinaryReader& reader);

  private:
    /** Collect SparseGradRefs for one table's input. */
    void CollectGrads(const TableInput& input, size_t batch,
                      const Matrix& grad,
                      std::vector<SparseGradRef>& refs) const;

    std::vector<EmbeddingTable> tables_;
    std::vector<SparseOptimizer> optimizers_;
};

}  // namespace neo::ops
