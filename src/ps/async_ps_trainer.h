/**
 * @file
 * Asynchronous parameter-server training baseline (Sec. 2 / Fig. 2).
 *
 * The previous-generation system trains DLRMs on a disaggregated CPU
 * cluster: dense MLP replicas synchronize with a central parameter server
 * via elastic averaging SGD (EASGD [61]), while embedding tables live on
 * the server and are updated Hogwild-style [45] — immediately, per
 * occurrence, with no duplicate merging — so updates from different
 * trainers interleave and read stale state.
 *
 * We emulate the asynchrony deterministically: N virtual trainers are
 * stepped round-robin; each holds its own dense replica (stale between
 * EASGD syncs) and reads/writes the shared server embeddings directly
 * (the naive, order-dependent sparse path). Staleness therefore grows
 * with the trainer count, reproducing the quality gap of Fig. 10 without
 * nondeterministic data races.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/dlrm_config.h"
#include "data/dataset.h"
#include "ops/mlp.h"
#include "tensor/interaction.h"
#include "tensor/loss.h"

namespace neo::ps {

/** Parameter-server deployment shape and EASGD hyper-parameters. */
struct PsConfig {
    /** Number of virtual trainers (≈16 in the paper's A1 baseline). */
    int num_trainers = 16;
    /** Per-trainer mini-batch (~150 in the paper). */
    size_t batch_size = 150;
    /** Trainer steps between EASGD syncs with the server. */
    int sync_period = 8;
    /** Elastic-averaging coefficient. */
    float easgd_alpha = 0.4f;
};

/** One failed virtual trainer, for the degraded-mode report. */
struct TrainerFailure {
    /** Index of the trainer that died. */
    int trainer = -1;
    /** Samples the job had consumed when it died. */
    uint64_t at_sample = 0;
    std::string cause;
};

/** Deterministic emulation of the async PS training system. */
class AsyncPsTrainer
{
  public:
    AsyncPsTrainer(const core::DlrmConfig& config, const PsConfig& ps_config);

    /**
     * Advance one trainer micro-step (round-robin over trainers), pulling
     * one batch from `dataset`.
     *
     * Degrades gracefully: a trainer whose micro-step throws is marked
     * failed and recorded (see failures()); the job continues round-robin
     * over the surviving trainers — mirroring how the async PS system
     * tolerates worker loss, at the cost of throughput, where the sync
     * system must recover the collective. Throws only when no healthy
     * trainer remains.
     *
     * @return The stepped trainer's mini-batch loss.
     */
    double Step(data::SyntheticCtrDataset& dataset);

    /** Administratively kill one trainer (fault injection / tests). */
    void FailTrainer(int index, const std::string& cause);

    /** Trainers still participating in the round-robin. */
    int NumHealthyTrainers() const;

    /** Structured report of every trainer death, in order. */
    const std::vector<TrainerFailure>& failures() const
    {
        return failures_;
    }

    /** Evaluate NE using the server's center model. */
    void Evaluate(const data::Batch& batch, NormalizedEntropy& ne);

    /** Total training samples consumed so far. */
    uint64_t SamplesSeen() const { return samples_seen_; }

    const core::DlrmConfig& config() const { return config_; }

  private:
    /** Per-trainer state: a dense replica plus optimizer slots. */
    struct Trainer {
        std::unique_ptr<ops::Mlp> bottom;
        std::unique_ptr<ops::Mlp> top;
        std::unique_ptr<ops::DenseOptimizer> opt;
        std::vector<size_t> bottom_slots;
        std::vector<size_t> top_slots;
        int steps = 0;
        /** Dead trainers are skipped by the round-robin. */
        bool failed = false;
    };

    /** Elastic averaging between one trainer and the server center. */
    void EasgdSync(Trainer& trainer);

    /** Forward/backward for one batch against a trainer's dense replica. */
    double TrainMicroStep(Trainer& trainer, const data::Batch& batch);

    core::DlrmConfig config_;
    PsConfig ps_config_;

    /** Server state: center dense model + embedding tables. */
    std::unique_ptr<ops::Mlp> center_bottom_;
    std::unique_ptr<ops::Mlp> center_top_;
    std::unique_ptr<ops::EmbeddingBagCollection> server_embeddings_;
    std::unique_ptr<DotInteraction> interaction_;

    std::vector<Trainer> trainers_;
    int next_trainer_ = 0;
    uint64_t samples_seen_ = 0;
    std::vector<TrainerFailure> failures_;
};

}  // namespace neo::ps
