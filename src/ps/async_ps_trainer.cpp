#include "ps/async_ps_trainer.h"

#include <stdexcept>

#include "common/logging.h"
#include "obs/trace.h"

namespace neo::ps {

AsyncPsTrainer::AsyncPsTrainer(const core::DlrmConfig& config,
                               const PsConfig& ps_config)
    : config_(config), ps_config_(ps_config)
{
    config_.Validate();
    NEO_REQUIRE(ps_config_.num_trainers >= 1, "need at least one trainer");

    Rng center_rng(config_.seed);
    center_bottom_ = std::make_unique<ops::Mlp>(
        ops::MlpConfig{config_.BottomLayerSizes(), true}, center_rng);
    center_top_ = std::make_unique<ops::Mlp>(
        ops::MlpConfig{config_.TopLayerSizes(), false}, center_rng);
    server_embeddings_ = std::make_unique<ops::EmbeddingBagCollection>(
        config_.TableSpecs(), config_.sparse_optimizer, config_.seed);
    interaction_ = std::make_unique<DotInteraction>(config_.tables.size(),
                                                    config_.EmbeddingDim());

    trainers_.resize(ps_config_.num_trainers);
    for (auto& t : trainers_) {
        // Every replica starts from the center parameters.
        Rng replica_rng(config_.seed);
        t.bottom = std::make_unique<ops::Mlp>(
            ops::MlpConfig{config_.BottomLayerSizes(), true}, replica_rng);
        t.top = std::make_unique<ops::Mlp>(
            ops::MlpConfig{config_.TopLayerSizes(), false}, replica_rng);
        t.opt = std::make_unique<ops::DenseOptimizer>(
            config_.dense_optimizer);
        t.bottom_slots = t.bottom->RegisterParams(*t.opt);
        t.top_slots = t.top->RegisterParams(*t.opt);
    }
}

void
AsyncPsTrainer::EasgdSync(Trainer& trainer)
{
    NEO_TRACE_SPAN("easgd_sync", "opt");
    const float alpha = ps_config_.easgd_alpha;
    auto sync_mlp = [alpha](ops::Mlp& local, ops::Mlp& center) {
        for (size_t l = 0; l < local.NumLayers(); l++) {
            auto elastic = [alpha](Matrix& x, Matrix& c) {
                float* xp = x.data();
                float* cp = c.data();
                for (size_t i = 0; i < x.size(); i++) {
                    const float diff = xp[i] - cp[i];
                    xp[i] -= alpha * diff;
                    cp[i] += alpha * diff;
                }
            };
            elastic(local.weight(l), center.weight(l));
            elastic(local.bias(l), center.bias(l));
        }
    };
    sync_mlp(*trainer.bottom, *center_bottom_);
    sync_mlp(*trainer.top, *center_top_);
}

double
AsyncPsTrainer::TrainMicroStep(Trainer& trainer, const data::Batch& batch)
{
    NEO_TRACE_SPAN("ps_micro_step", "step");
    const size_t b = batch.size();

    std::vector<ops::TableInput> inputs;
    inputs.reserve(config_.tables.size());
    for (size_t t = 0; t < config_.tables.size(); t++) {
        inputs.push_back(batch.sparse.InputForTable(t));
    }

    // ---- forward against the (stale) replica + live server embeddings ----
    Matrix bottom_out;
    trainer.bottom->Forward(batch.dense, bottom_out);
    std::vector<Matrix> pooled;
    server_embeddings_->Forward(inputs, b, pooled);
    Matrix interacted(b, interaction_->OutputDim());
    interaction_->Forward(bottom_out, pooled, interacted);
    Matrix logits;
    trainer.top->Forward(interacted, logits);
    const double loss = BceWithLogitsLoss(logits, batch.labels);

    // ---- backward ----
    Matrix grad_logits(b, 1);
    BceWithLogitsGrad(logits, batch.labels, grad_logits);

    trainer.top->ZeroGrads();
    Matrix grad_interacted;
    trainer.top->Backward(grad_logits, grad_interacted);

    Matrix grad_bottom_out(b, config_.EmbeddingDim());
    std::vector<Matrix> grad_pooled(config_.tables.size());
    for (auto& g : grad_pooled) {
        g = Matrix(b, config_.EmbeddingDim());
    }
    interaction_->Backward(grad_interacted, grad_bottom_out, grad_pooled);

    trainer.bottom->ZeroGrads();
    Matrix grad_dense_unused;
    trainer.bottom->Backward(grad_bottom_out, grad_dense_unused);

    // ---- updates: Hogwild-style immediate sparse, local dense ----
    server_embeddings_->BackwardAndUpdateNaive(inputs, b, grad_pooled);
    trainer.bottom->ApplyOptimizer(*trainer.opt, trainer.bottom_slots);
    trainer.top->ApplyOptimizer(*trainer.opt, trainer.top_slots);
    return loss;
}

void
AsyncPsTrainer::FailTrainer(int index, const std::string& cause)
{
    NEO_REQUIRE(index >= 0 &&
                    index < static_cast<int>(trainers_.size()),
                "trainer index out of range");
    if (trainers_[index].failed) {
        return;
    }
    trainers_[index].failed = true;
    failures_.push_back({index, samples_seen_, cause});
    Warn("ps trainer ", index, " failed (", cause, "); ",
         NumHealthyTrainers(), " of ", trainers_.size(),
         " trainers remain");
}

int
AsyncPsTrainer::NumHealthyTrainers() const
{
    int healthy = 0;
    for (const auto& t : trainers_) {
        healthy += t.failed ? 0 : 1;
    }
    return healthy;
}

double
AsyncPsTrainer::Step(data::SyntheticCtrDataset& dataset)
{
    // Round-robin over healthy trainers; dead ones lose their turn, so a
    // failure degrades throughput (and staleness) without stopping the
    // job. Every failure path below is bounded by the trainer count.
    for (int probe = 0; probe < ps_config_.num_trainers; probe++) {
        const int index = next_trainer_;
        next_trainer_ = (next_trainer_ + 1) % ps_config_.num_trainers;
        Trainer& trainer = trainers_[index];
        if (trainer.failed) {
            continue;
        }

        const data::Batch batch = dataset.NextBatch(ps_config_.batch_size);
        double loss = 0.0;
        try {
            loss = TrainMicroStep(trainer, batch);
        } catch (const std::exception& e) {
            FailTrainer(index, e.what());
            continue;
        }
        samples_seen_ += batch.size();

        trainer.steps++;
        if (trainer.steps % ps_config_.sync_period == 0) {
            EasgdSync(trainer);
        }
        return loss;
    }
    throw std::runtime_error(
        "async PS: all " + std::to_string(ps_config_.num_trainers) +
        " trainers have failed");
}

void
AsyncPsTrainer::Evaluate(const data::Batch& batch, NormalizedEntropy& ne)
{
    const size_t b = batch.size();
    std::vector<ops::TableInput> inputs;
    for (size_t t = 0; t < config_.tables.size(); t++) {
        inputs.push_back(batch.sparse.InputForTable(t));
    }
    Matrix bottom_out;
    center_bottom_->Forward(batch.dense, bottom_out);
    std::vector<Matrix> pooled;
    server_embeddings_->Forward(inputs, b, pooled);
    Matrix interacted(b, interaction_->OutputDim());
    interaction_->Forward(bottom_out, pooled, interacted);
    Matrix logits;
    center_top_->Forward(interacted, logits);
    ne.AddLogits(logits, batch.labels);
}

}  // namespace neo::ps
