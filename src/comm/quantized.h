/**
 * @file
 * Quantized collective communication (Yang et al. [58]; Sec. 5.3.2).
 *
 * The paper halves AllToAll volume by sending pooled embeddings as FP16 in
 * the forward pass and gradients as BF16 in the backward pass (BF16's wider
 * exponent tolerates gradient dynamic range). These helpers quantize a
 * float payload, run the byte AllToAll, and dequantize on receipt.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comm/process_group.h"
#include "common/float_types.h"

namespace neo::comm {

/** Quantize a float vector into 16-bit words of the given precision. */
std::vector<uint16_t> QuantizeVector(const std::vector<float>& in,
                                     Precision precision);

/** Dequantize 16-bit words back to floats. */
std::vector<float> DequantizeVector(const std::vector<uint16_t>& in,
                                    Precision precision);

/**
 * AllToAllv of float payloads with on-the-wire quantization.
 *
 * @param pg Process group to communicate over.
 * @param send Per-destination float payloads.
 * @param recv Per-source dequantized float payloads.
 * @param precision kFp16 or kBf16 for quantized transport; kFp32 falls back
 *   to the plain float AllToAll.
 */
void QuantizedAllToAll(ProcessGroup& pg,
                       const std::vector<std::vector<float>>& send,
                       std::vector<std::vector<float>>& recv,
                       Precision precision);

/**
 * AllReduce with quantized transport. The reduction itself happens in
 * FP32 after dequantization (matching how quantized collectives are
 * implemented over NCCL send/recv), so only the wire format loses
 * precision.
 */
void QuantizedAllReduce(ProcessGroup& pg, float* data, size_t count,
                        Precision precision);

}  // namespace neo::comm
