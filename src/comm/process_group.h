/**
 * @file
 * Collective-communication abstraction, mirroring PyTorch's ProcessGroup
 * interface that the paper's stack targets (Sec. 4.5). DLRM training uses:
 *
 *  - AllReduce for data-parallel MLP gradient synchronization,
 *  - AllToAll / AllToAllv for model-parallel pooled embeddings and for
 *    redistributing embedding-table input indices,
 *  - ReduceScatter for row-wise sharded tables,
 *  - AllGather / Broadcast for bookkeeping.
 *
 * All reductions are performed in a fixed rank order so results are bitwise
 * deterministic (required by the paper's reproducibility story, Sec. 4.1.2).
 */
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace neo::comm {

/**
 * Thrown by collectives when the communicator has been poisoned by a rank
 * failure (the rank threw, was killed by fault injection, or missed a
 * barrier deadline). Every surviving rank receives a RankFailure naming
 * the same originating rank, so failure handling is symmetric: either all
 * ranks complete a collective or all ranks observe the same failure.
 */
class RankFailure : public std::runtime_error
{
  public:
    RankFailure(int failed_rank, std::string cause, bool transient);

    /** Rank blamed for poisoning the communicator. */
    int failed_rank() const { return failed_rank_; }

    /** Human-readable description of the originating failure. */
    const std::string& cause() const { return cause_; }

    /**
     * True when the originating fault is known to be transient (e.g. an
     * injected one-shot fault): the group may be recoverable and a step
     * retry is worth attempting. False means the rank is gone for good.
     */
    bool transient() const { return transient_; }

  private:
    int failed_rank_;
    std::string cause_;
    bool transient_;
};

/** Collective operation kinds, used for traffic accounting. */
enum class CollectiveOp {
    kAllReduce,
    kAllGather,
    kReduceScatter,
    kAllToAll,
    kBroadcast,
    kBarrier,
};

/** Human-readable name for a collective op. */
const char* CollectiveOpName(CollectiveOp op);

/**
 * One recorded collective call: the payload size of the operation as seen
 * by this rank. Traces feed the PARAM-bench-style replay mode (Appendix
 * A): re-estimating a workload's communication time on a modeled cluster
 * from the exact sizes and sequence a real run produced.
 */
struct TraceEvent {
    CollectiveOp op;
    /** Payload bytes (op-specific: buffer size or total send bytes). */
    uint64_t bytes;
    // Timing fields (default-initialized so `{op, bytes}` braced literals
    // stay valid). sim::ReplayTrace ignores them: replay re-estimates the
    // time from sizes alone, and a timed trace must replay identically to
    // its untimed twin.
    /** Collective entry time, ns on obs::NowNs()'s steady clock. */
    int64_t start_ns = 0;
    /** Measured wall-clock of the collective (incl. barrier waits), ns. */
    int64_t duration_ns = 0;
    /** Per-op sequence index on the recording rank (0 = first call). */
    uint64_t seq = 0;
};

/** Per-rank traffic counters (bytes sent off-rank, call counts). */
struct CommStats {
    uint64_t allreduce_bytes = 0;
    uint64_t allgather_bytes = 0;
    uint64_t reducescatter_bytes = 0;
    uint64_t alltoall_bytes = 0;
    uint64_t broadcast_bytes = 0;
    uint64_t calls = 0;

    uint64_t
    TotalBytes() const
    {
        return allreduce_bytes + allgather_bytes + reducescatter_bytes +
               alltoall_bytes + broadcast_bytes;
    }
};

/**
 * One rank's handle to a communicator. Collective calls must be made by
 * every rank in the group (BSP style); mismatched participation deadlocks,
 * as with NCCL — except that fault-aware backends bound the hang: a missing
 * rank trips the barrier deadline and every waiter throws RankFailure.
 */
class ProcessGroup
{
  public:
    virtual ~ProcessGroup() = default;

    /** This rank's index in [0, Size()). */
    virtual int Rank() const = 0;

    /** Number of ranks in the group. */
    virtual int Size() const = 0;

    /** Block until every rank has entered the barrier. */
    virtual void Barrier() = 0;

    /**
     * Barrier with an explicit deadline: block until every rank has
     * entered, or until `timeout` elapses. Fault-aware backends poison
     * the group and throw RankFailure (naming the slowest absent rank) on
     * expiry; the base implementation ignores the timeout.
     */
    virtual void
    Barrier(std::chrono::milliseconds timeout)
    {
        (void)timeout;
        Barrier();
    }

    /** False once the group has been poisoned by a rank failure. */
    virtual bool Healthy() const { return true; }

    /**
     * Attempt to restore a poisoned group so a step can be retried after
     * a transient fault. Collective: every surviving rank must call it;
     * returns true when all Size() ranks rendezvoused within `timeout`
     * and the group was reset, false otherwise (the failed rank is truly
     * gone). Backends without fault support always return false.
     */
    virtual bool
    Recover(std::chrono::milliseconds timeout)
    {
        (void)timeout;
        return false;
    }

    /**
     * In-place sum-AllReduce over floats. After the call every rank holds
     * the rank-ordered sum (bitwise identical on all ranks).
     */
    virtual void AllReduceSum(float* data, size_t count) = 0;

    /** In-place broadcast from `root`. */
    virtual void Broadcast(float* data, size_t count, int root) = 0;

    /**
     * AllGather: every rank contributes `count` floats; `out` receives
     * Size()*count floats in rank order.
     */
    virtual void AllGather(const float* in, size_t count, float* out) = 0;

    /**
     * ReduceScatter (sum): `in` holds Size()*count floats partitioned into
     * per-rank chunks; `out` receives the rank-ordered sum of this rank's
     * chunk across all ranks.
     */
    virtual void ReduceScatterSum(const float* in, size_t count,
                                  float* out) = 0;

    /**
     * Variable AllToAll over raw bytes.
     *
     * @param send_buffers Size() buffers; send_buffers[r] goes to rank r.
     * @param recv_buffers Filled with Size() buffers; recv_buffers[r] is
     *   the data rank r sent to this rank.
     */
    virtual void AllToAllBytes(
        const std::vector<std::vector<uint8_t>>& send_buffers,
        std::vector<std::vector<uint8_t>>& recv_buffers) = 0;

    /** Traffic accounted against this rank so far. */
    virtual CommStats Stats() const = 0;

    /**
     * Attach a trace sink: every subsequent collective appends one
     * TraceEvent. Pass nullptr to detach. The sink must outlive the
     * recording window; default implementation ignores tracing.
     *
     * Thread contract: SetTrace may be called from any thread (the sink
     * pointer is published with release/acquire semantics in fault-aware
     * backends), but appends happen on the rank's own collective-calling
     * thread — callers must not read the sink vector while a collective
     * is in flight on this rank.
     */
    virtual void SetTrace(std::vector<TraceEvent>* /*trace*/) {}

    /**
     * Re-book the bytes accounted for this rank's most recently completed
     * collective to `wire_bytes` — the size actually moved on the wire.
     * Used by compressed paths whose in-memory call carries FP32 but whose
     * modeled transport is FP16/BF16 (Sec. 6.1's comm-precision study):
     * adjusts the per-op CommStats counter and the bytes of the trace
     * event just recorded (if any). No-op when nothing was booked yet;
     * default implementation ignores it.
     */
    virtual void RebookLastCollective(uint64_t /*wire_bytes*/) {}

    // -- Typed convenience wrappers over AllToAllBytes -------------------

    /** AllToAllv of float payloads. */
    void AllToAllFloats(const std::vector<std::vector<float>>& send,
                        std::vector<std::vector<float>>& recv);

    /** AllToAllv of 64-bit index payloads. */
    void AllToAllIndices(const std::vector<std::vector<int64_t>>& send,
                         std::vector<std::vector<int64_t>>& recv);

    /** AllToAllv of 32-bit length payloads. */
    void AllToAllLengths(const std::vector<std::vector<uint32_t>>& send,
                         std::vector<std::vector<uint32_t>>& recv);
};

}  // namespace neo::comm
