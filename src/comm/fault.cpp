#include "comm/fault.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "comm/threaded_process_group.h"
#include "common/logging.h"

namespace neo::comm {

const char*
FaultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kKill: return "kill";
      case FaultKind::kDelay: return "delay";
      case FaultKind::kCorrupt: return "corrupt";
    }
    return "unknown";
}

void
FaultInjector::Arm(const FaultSpec& spec)
{
    NEO_REQUIRE(spec.rank >= 0, "fault victim rank must be >= 0");
    std::lock_guard<std::mutex> lock(mutex_);
    armed_.push_back(spec);
}

void
FaultInjector::OnCollective(ThreadedWorld& world, int rank,
                            uint64_t call_index, CollectiveOp op,
                            float* payload, size_t count)
{
    FaultSpec spec;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const uint64_t op_count = op_counts_[rank][static_cast<size_t>(op)]++;
        const auto it = std::find_if(
            armed_.begin(), armed_.end(), [&](const FaultSpec& s) {
                if (s.rank != rank) {
                    return false;
                }
                return s.match_op ? (s.op == op && s.call_index == op_count)
                                  : s.call_index == call_index;
            });
        if (it == armed_.end()) {
            return;
        }
        spec = *it;
        armed_.erase(it);
        fired_.push_back({spec, op});
    }

    switch (spec.kind) {
      case FaultKind::kDelay:
        // Straggler: the rank survives but arrives late; peers see it
        // either as absorbed latency or as a barrier-deadline failure.
        std::this_thread::sleep_for(spec.delay);
        return;
      case FaultKind::kCorrupt:
        // Silent data corruption; only collectives with a mutable local
        // payload can be poisoned this way.
        if (payload != nullptr) {
            for (size_t i = 0; i < count; i++) {
                payload[i] = spec.corrupt_value;
            }
        }
        return;
      case FaultKind::kKill: {
        std::ostringstream cause;
        cause << "injected kill at " << CollectiveOpName(op) << " call #"
              << call_index;
        // Poison first so peers wake immediately instead of waiting for
        // their barrier deadline, then take this rank down.
        world.Abort(rank, cause.str(), spec.transient);
        throw RankFailure(rank, cause.str(), spec.transient);
      }
    }
}

std::vector<FaultEvent>
FaultInjector::Fired() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fired_;
}

size_t
FaultInjector::NumArmed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return armed_.size();
}

void
FaultInjector::Reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    armed_.clear();
    fired_.clear();
    op_counts_.clear();
}

}  // namespace neo::comm
