/**
 * @file
 * Shared-memory, thread-backed implementation of ProcessGroup.
 *
 * Each simulated GPU worker is a thread; collectives synchronize through a
 * central sense-reversing barrier and exchange data via pointers published
 * on a shared board. Reductions always accumulate in rank order 0..N-1, so
 * every rank computes bitwise-identical results regardless of thread
 * scheduling — the determinism contract the paper's exact optimizers rely
 * on.
 *
 * Failure handling follows a poisoned-barrier protocol: a failing rank
 * (an exception escaping its worker fn, an injected kill, or a missed
 * barrier deadline) marks the world aborted and wakes every waiter; from
 * then on every Barrier() — and therefore every collective, since all
 * collectives barrier internally — throws RankFailure naming the
 * originating rank. A job thus fails fast and symmetrically instead of
 * hanging on the first absent rank. After a transient fault, TryRecover()
 * lets all surviving ranks rendezvous and re-arm the world for a retry.
 */
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "comm/fault.h"
#include "comm/process_group.h"
#include "obs/straggler.h"

namespace neo::comm {

class ThreadedProcessGroup;

/**
 * Shared state for one communicator group. Create one World per simulated
 * cluster, then hand each worker thread its ProcessGroup via GetGroup().
 */
class ThreadedWorld
{
  public:
    /** Failure-handling knobs for a world. */
    struct Options {
        /**
         * Default deadline applied to every barrier (and therefore every
         * collective). Zero or negative waits forever — the pre-fault-
         * tolerance behaviour.
         */
        std::chrono::milliseconds barrier_timeout{60000};
        /** Optional deterministic fault injector; not owned. */
        FaultInjector* injector = nullptr;
        /**
         * Straggler detector fed by this world's barrier arrivals; not
         * owned. Defaults to the process-wide singleton — a fleet of
         * independent serving worlds gives each replica its own
         * instance, otherwise same-numbered ranks of different worlds
         * collide on one envelope and mask each other's lateness.
         */
        obs::StragglerDetector* detector = nullptr;
    };

    /** Create a world with `size` ranks and default options. */
    explicit ThreadedWorld(int size);

    /** Create a world with explicit failure-handling options. */
    ThreadedWorld(int size, Options options);
    ~ThreadedWorld();

    ThreadedWorld(const ThreadedWorld&) = delete;
    ThreadedWorld& operator=(const ThreadedWorld&) = delete;

    int size() const { return size_; }

    /** Per-rank handle; valid for the lifetime of the world. */
    ProcessGroup& GetGroup(int rank);

    /**
     * Convenience: spawn `size` threads running fn(rank, pg) and join them.
     * An exception escaping one rank's fn poisons the world, so every
     * other rank unblocks with RankFailure instead of hanging; the
     * originating rank's exception is rethrown in preference to the
     * secondary RankFailures.
     */
    static void Run(int size,
                    const std::function<void(int, ProcessGroup&)>& fn);

    /** Run with explicit failure-handling options and fault injection. */
    static void Run(int size, const Options& options,
                    const std::function<void(int, ProcessGroup&)>& fn);

    /**
     * Poison the world on behalf of `rank`: record the cause (first abort
     * wins) and wake every barrier waiter, which then throw RankFailure.
     * Idempotent and thread-safe.
     */
    void Abort(int rank, const std::string& cause, bool transient = false);

    /** True once the world has been poisoned. */
    bool aborted() const;

    /** Rank blamed for the poisoning (-1 when not aborted). */
    int aborted_rank() const;

    /**
     * Collective recovery rendezvous after a transient fault: resets the
     * abort flag and all barrier state once every rank has arrived.
     * Returns false (leaving the world poisoned) if the full world does
     * not rendezvous within `timeout` — i.e. some rank is truly dead.
     */
    bool TryRecover(std::chrono::milliseconds timeout);

    /** Outcome of a ShrinkAfterFailure rendezvous. */
    struct ShrinkResult {
        /** True once a survivor cohort formed in time. */
        bool ok = false;
        /** This rank's compacted rank in the survivor world. */
        int new_rank = -1;
        /** Survivor world size (= number of ranks that rendezvoused;
         *  old size - 1 when exactly one rank died). */
        int new_size = 0;
        /** This rank's handle in the survivor world; owned by the parent
         *  world, valid for the parent's lifetime. */
        ProcessGroup* group = nullptr;
    };

    /**
     * Shrinking-world recovery: after a permanent failure poisons this
     * world, the survivors rendezvous here and receive handles into a
     * fresh child ThreadedWorld that excludes every dead rank. Survivor
     * ranks are compacted in ascending order of their old rank, so the
     * child is a dense 0..new_size-1 communicator that `neo::sharding`
     * can re-plan over (with a single dead rank this is the familiar
     * "rank > dead maps to rank - 1" mapping). The parent world stays
     * poisoned — its groups must not be used again — and owns the child,
     * so survivor groups stay valid until the parent is destroyed.
     *
     * The cohort seals as soon as all `size - 1` possible survivors
     * arrived (the single-death fast path, no deadline paid). When k >= 2
     * ranks died that count is unreachable, so ONE round still converges:
     * at the deadline the first waking survivor seals the cohort from
     * whoever did arrive — provided at least two ranks showed up.
     * Returns ok=false if fewer than two ranks arrived within `timeout`
     * (a lone survivor cannot tell a shrunken world from a total loss).
     * A survivor that misses the window joins the NEXT cohort: it may
     * still come back ok (with whoever arrives late with it) but it will
     * never share a world with the ranks that already sealed.
     */
    ShrinkResult ShrinkAfterFailure(int rank,
                                    std::chrono::milliseconds timeout);

    /**
     * Judge the barrier-arrival lateness this world has been feeding the
     * process-wide obs::StragglerDetector and publish the straggler
     * gauges. Under a lockstep BSP schedule arrival lateness — not step
     * time — is what localizes a slow rank: every barrier records each
     * rank's arrival delay behind the generation's first arrival.
     */
    obs::StragglerVerdict AnalyzeStragglers() const;

  private:
    friend class ThreadedProcessGroup;

    /**
     * Central sense-reversing barrier across all ranks, with a deadline.
     * Throws RankFailure if the world is (or becomes) aborted, or if the
     * deadline expires — in which case the waiter names the slowest
     * absent rank and poisons the world first.
     */
    void Barrier(int rank, std::chrono::milliseconds timeout);

    /** Barrier with the world's default timeout. */
    void Barrier(int rank);

    /** This world's straggler detector (option or the singleton). */
    obs::StragglerDetector& Detector() const;

    /** Record the abort; requires barrier_mutex_ held. */
    void AbortLocked(int rank, const std::string& cause, bool transient);

    /** Throw RankFailure from the stored abort info; lock must be held. */
    [[noreturn]] void ThrowAbortedLocked() const;

    int size_;
    Options options_;

    mutable std::mutex barrier_mutex_;
    std::condition_variable barrier_cv_;
    int barrier_waiting_ = 0;
    uint64_t barrier_generation_ = 0;
    /** Lifetime barrier-entry count per rank; lowest = straggler. */
    std::vector<uint64_t> barrier_entries_;
    /** NowNs() of the current generation's first arrival; each later
     *  arrival's lateness against it feeds the straggler detector. */
    int64_t barrier_first_arrival_ns_ = 0;

    /** Poisoned-world state (first abort wins). */
    bool aborted_ = false;
    int abort_rank_ = -1;
    std::string abort_cause_;
    bool abort_transient_ = false;

    /** Recovery rendezvous (separate generation so it works while
     *  poisoned). */
    int recover_waiting_ = 0;
    uint64_t recover_generation_ = 0;

    /** One sealed survivor cohort: which parent ranks rendezvoused, and
     *  the child world they received. */
    struct ShrinkCohort {
        /** Parent-world ranks in the cohort, ascending (a survivor's
         *  child rank is its index in this list). */
        std::vector<int> members;
        std::unique_ptr<ThreadedWorld> world;
    };

    /** Shrink rendezvous state (survivors-only, works while poisoned):
     *  ranks arrived for the cohort currently forming. */
    std::vector<int> shrink_arrived_;
    uint64_t shrink_generation_ = 0;
    /** Sealed cohorts, one per completed shrink rendezvous (indexed by
     *  the pre-increment shrink generation); kept alive for the parent's
     *  lifetime so survivor ProcessGroup handles stay valid. */
    std::vector<ShrinkCohort> shrink_cohorts_;

    /** Pointer board: one slot per rank, repurposed per collective. */
    std::vector<const void*> ptr_board_;
    std::vector<size_t> size_board_;
    /** Scratch buffer for reduce results (resized on demand by rank 0). */
    std::vector<float> reduce_scratch_;
    /** AllToAll board: [src][dst] -> payload view. */
    std::vector<std::vector<std::pair<const uint8_t*, size_t>>> a2a_board_;

    std::vector<std::unique_ptr<ThreadedProcessGroup>> groups_;
};

/** Rank-local handle implementing the ProcessGroup interface. */
class ThreadedProcessGroup : public ProcessGroup
{
  public:
    ThreadedProcessGroup(ThreadedWorld* world, int rank)
        : world_(world), rank_(rank) {}

    int Rank() const override { return rank_; }
    int Size() const override { return world_->size(); }

    void Barrier() override;
    void Barrier(std::chrono::milliseconds timeout) override;
    void AllReduceSum(float* data, size_t count) override;
    void Broadcast(float* data, size_t count, int root) override;
    void AllGather(const float* in, size_t count, float* out) override;
    void ReduceScatterSum(const float* in, size_t count,
                          float* out) override;
    void AllToAllBytes(
        const std::vector<std::vector<uint8_t>>& send_buffers,
        std::vector<std::vector<uint8_t>>& recv_buffers) override;

    bool Healthy() const override { return !world_->aborted(); }
    bool Recover(std::chrono::milliseconds timeout) override;

    CommStats Stats() const override { return stats_; }

    /**
     * Release-publish the sink so a sink attached from another thread
     * (e.g. the driver before spawning rank threads) is visible to this
     * rank's collectives without a data race. Appends themselves stay
     * strictly on the rank thread: collectives finish their ParallelFor
     * local reductions (whose workers never touch the sink) before the
     * single post-completion push_back.
     */
    void SetTrace(std::vector<TraceEvent>* trace) override
    {
        trace_.store(trace, std::memory_order_release);
    }

    void RebookLastCollective(uint64_t wire_bytes) override;

  private:
    /**
     * Account one completed collective: bump `*stat_field` by
     * `stat_bytes`, append a timed TraceEvent of `trace_bytes` if a sink
     * is attached, and remember both for RebookLastCollective.
     */
    void Book(CollectiveOp op, uint64_t* stat_field, uint64_t stat_bytes,
              uint64_t trace_bytes, int64_t start_ns);

    /**
     * Advance this rank's collective call counter and give the armed
     * fault injector (if any) a chance to fire. Called at the top of
     * every collective, before any shared-board traffic, so stats and
     * traces only ever record completed collectives.
     */
    void MaybeInject(CollectiveOp op, float* payload, size_t count);

    ThreadedWorld* world_;
    int rank_;
    /** Collective calls issued (not necessarily completed) by this rank. */
    uint64_t collective_seq_ = 0;
    CommStats stats_;
    /** Trace sink; atomic so SetTrace from another thread is race-free
     *  against this rank's collectives (append path is rank-thread-only). */
    std::atomic<std::vector<TraceEvent>*> trace_{nullptr};
    /** Per-op completed-call counters feeding TraceEvent::seq. */
    std::array<uint64_t, 6> op_seq_{};
    /** Rebooking state: the stats field / bytes of the last Book(). */
    uint64_t* last_stat_field_ = nullptr;
    uint64_t last_stat_bytes_ = 0;
    bool last_traced_ = false;
};

}  // namespace neo::comm
