/**
 * @file
 * Shared-memory, thread-backed implementation of ProcessGroup.
 *
 * Each simulated GPU worker is a thread; collectives synchronize through a
 * central sense-reversing barrier and exchange data via pointers published
 * on a shared board. Reductions always accumulate in rank order 0..N-1, so
 * every rank computes bitwise-identical results regardless of thread
 * scheduling — the determinism contract the paper's exact optimizers rely
 * on.
 */
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "comm/process_group.h"

namespace neo::comm {

class ThreadedProcessGroup;

/**
 * Shared state for one communicator group. Create one World per simulated
 * cluster, then hand each worker thread its ProcessGroup via GetGroup().
 */
class ThreadedWorld
{
  public:
    /** Create a world with `size` ranks. */
    explicit ThreadedWorld(int size);
    ~ThreadedWorld();

    ThreadedWorld(const ThreadedWorld&) = delete;
    ThreadedWorld& operator=(const ThreadedWorld&) = delete;

    int size() const { return size_; }

    /** Per-rank handle; valid for the lifetime of the world. */
    ProcessGroup& GetGroup(int rank);

    /**
     * Convenience: spawn `size` threads running fn(rank, pg) and join them.
     * Exceptions from workers are rethrown (first one wins).
     */
    static void Run(int size,
                    const std::function<void(int, ProcessGroup&)>& fn);

  private:
    friend class ThreadedProcessGroup;

    /** Central sense-reversing barrier across all ranks. */
    void Barrier();

    int size_;

    std::mutex barrier_mutex_;
    std::condition_variable barrier_cv_;
    int barrier_waiting_ = 0;
    uint64_t barrier_generation_ = 0;

    /** Pointer board: one slot per rank, repurposed per collective. */
    std::vector<const void*> ptr_board_;
    std::vector<size_t> size_board_;
    /** Scratch buffer for reduce results (resized on demand by rank 0). */
    std::vector<float> reduce_scratch_;
    /** AllToAll board: [src][dst] -> payload view. */
    std::vector<std::vector<std::pair<const uint8_t*, size_t>>> a2a_board_;

    std::vector<std::unique_ptr<ThreadedProcessGroup>> groups_;
};

/** Rank-local handle implementing the ProcessGroup interface. */
class ThreadedProcessGroup : public ProcessGroup
{
  public:
    ThreadedProcessGroup(ThreadedWorld* world, int rank)
        : world_(world), rank_(rank) {}

    int Rank() const override { return rank_; }
    int Size() const override { return world_->size(); }

    void Barrier() override;
    void AllReduceSum(float* data, size_t count) override;
    void Broadcast(float* data, size_t count, int root) override;
    void AllGather(const float* in, size_t count, float* out) override;
    void ReduceScatterSum(const float* in, size_t count,
                          float* out) override;
    void AllToAllBytes(
        const std::vector<std::vector<uint8_t>>& send_buffers,
        std::vector<std::vector<uint8_t>>& recv_buffers) override;

    CommStats Stats() const override { return stats_; }

    void SetTrace(std::vector<TraceEvent>* trace) override
    {
        trace_ = trace;
    }

  private:
    /** Append one trace event if a sink is attached. */
    void
    Record(CollectiveOp op, uint64_t bytes)
    {
        if (trace_ != nullptr) {
            trace_->push_back({op, bytes});
        }
    }

    ThreadedWorld* world_;
    int rank_;
    CommStats stats_;
    std::vector<TraceEvent>* trace_ = nullptr;
};

}  // namespace neo::comm
