#include "comm/quantized.h"

#include <cstring>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "kernels/kernels.h"
#include "obs/trace.h"

namespace neo::comm {

namespace {

/**
 * Elements per convert chunk. The conversions are pure elementwise maps,
 * so chunking over the shared pool cannot change results; the grain keeps
 * small control-plane payloads on the serial path.
 */
constexpr size_t kConvertGrain = 8192;

}  // namespace

std::vector<uint16_t>
QuantizeVector(const std::vector<float>& in, Precision precision)
{
    // Category "q" is transparent to StepBreakdown: conversion cost rolls
    // up into whichever phase (emb_fwd exchange, mlp allreduce, ...) runs
    // it, while the span itself stays visible on the timeline.
    NEO_TRACE_SPAN("quantize", "q");
    std::vector<uint16_t> out(in.size());
    // Elementwise converts dispatch to the active SIMD tier inside each
    // fixed chunk (hardware and software rounding are bit-identical, so
    // the tier cannot change payload bits).
    const kernels::KernelTable& kt = kernels::Active();
    switch (precision) {
      case Precision::kFp16:
        ParallelFor(0, in.size(), kConvertGrain, [&](size_t b, size_t e) {
            kt.quant_f16(in.data() + b, out.data() + b, e - b);
        });
        break;
      case Precision::kBf16:
        ParallelFor(0, in.size(), kConvertGrain, [&](size_t b, size_t e) {
            kt.quant_bf16(in.data() + b, out.data() + b, e - b);
        });
        break;
      default:
        NEO_FATAL("QuantizeVector supports fp16/bf16 only");
    }
    return out;
}

std::vector<float>
DequantizeVector(const std::vector<uint16_t>& in, Precision precision)
{
    NEO_TRACE_SPAN("dequantize", "q");
    std::vector<float> out(in.size());
    const kernels::KernelTable& kt = kernels::Active();
    switch (precision) {
      case Precision::kFp16:
        ParallelFor(0, in.size(), kConvertGrain, [&](size_t b, size_t e) {
            kt.dequant_f16(in.data() + b, out.data() + b, e - b);
        });
        break;
      case Precision::kBf16:
        ParallelFor(0, in.size(), kConvertGrain, [&](size_t b, size_t e) {
            kt.dequant_bf16(in.data() + b, out.data() + b, e - b);
        });
        break;
      default:
        NEO_FATAL("DequantizeVector supports fp16/bf16 only");
    }
    return out;
}

void
QuantizedAllToAll(ProcessGroup& pg,
                  const std::vector<std::vector<float>>& send,
                  std::vector<std::vector<float>>& recv, Precision precision)
{
    if (precision == Precision::kFp32 || precision == Precision::kTf32) {
        pg.AllToAllFloats(send, recv);
        return;
    }

    std::vector<std::vector<uint8_t>> send_bytes(send.size());
    for (size_t r = 0; r < send.size(); r++) {
        const std::vector<uint16_t> q = QuantizeVector(send[r], precision);
        send_bytes[r].resize(q.size() * sizeof(uint16_t));
        std::memcpy(send_bytes[r].data(), q.data(), send_bytes[r].size());
    }

    std::vector<std::vector<uint8_t>> recv_bytes;
    pg.AllToAllBytes(send_bytes, recv_bytes);

    recv.resize(recv_bytes.size());
    for (size_t r = 0; r < recv_bytes.size(); r++) {
        std::vector<uint16_t> q(recv_bytes[r].size() / sizeof(uint16_t));
        std::memcpy(q.data(), recv_bytes[r].data(), recv_bytes[r].size());
        recv[r] = DequantizeVector(q, precision);
    }
}

void
QuantizedAllReduce(ProcessGroup& pg, float* data, size_t count,
                   Precision precision)
{
    if (count == 0 || precision == Precision::kFp32 ||
        precision == Precision::kTf32) {
        // Zero-length reduces (data may be null) still synchronize; the
        // backend guards the empty payload.
        pg.AllReduceSum(data, count);
        return;
    }
    // Quantize the local contribution so the wire carries 16-bit data, then
    // reduce in FP32. Functionally this is dequantize(quantize(x)) followed
    // by an exact rank-ordered sum.
    std::vector<float> local(data, data + count);
    const std::vector<float> rounded =
        DequantizeVector(QuantizeVector(local, precision), precision);
    std::memcpy(data, rounded.data(), count * sizeof(float));
    pg.AllReduceSum(data, count);
    // The in-memory reduce carries FP32, but the modeled wire format is
    // the 16-bit payload: re-book the bytes at wire size so CommStats and
    // traces match what QuantizedAllToAll already accounts.
    pg.RebookLastCollective(count * BytesPerElement(precision));
}

}  // namespace neo::comm
