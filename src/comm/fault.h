/**
 * @file
 * Deterministic fault injection for collective backends.
 *
 * The paper's production setting (128-GPU ZionEX jobs, Sec. 5) treats a
 * slow or failed worker as a first-class event; testing that behaviour
 * needs a way to make a chosen rank fail at a chosen point, repeatably.
 * A FaultInjector is armed with FaultSpecs addressed by (rank, per-rank
 * collective call index) and attached to a world; the backend calls
 * OnCollective() at the top of every collective, which then kills the
 * rank (throws RankFailure after poisoning the world), delays it (a
 * straggler, detectable via barrier deadlines), or corrupts its payload
 * (silent data error, for end-to-end detection tests).
 */
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "comm/process_group.h"

namespace neo::comm {

class ThreadedWorld;

/** What an armed fault does to its victim. */
enum class FaultKind {
    /** Poison the world and throw RankFailure from the victim. */
    kKill,
    /** Sleep `delay` before the collective proceeds (straggler). */
    kDelay,
    /** Overwrite the collective's mutable payload with `corrupt_value`. */
    kCorrupt,
};

/** Human-readable name for a fault kind. */
const char* FaultKindName(FaultKind kind);

/** One armed fault: fires when `rank` makes its `call_index`-th call. */
struct FaultSpec {
    /** Victim rank. */
    int rank = 0;
    /** Per-rank collective call counter value to fire at (0-based). */
    uint64_t call_index = 0;
    /**
     * When true, `call_index` counts only collectives of kind `op` (a
     * per-rank, per-op counter). Tests use this to address a semantic
     * point in a step — e.g. "rank 2's 3rd AllReduce" — without knowing
     * the exact interleaving of other collectives.
     */
    bool match_op = false;
    /** The op counted when match_op is set. */
    CollectiveOp op = CollectiveOp::kBarrier;
    FaultKind kind = FaultKind::kKill;
    /** Sleep duration for kDelay faults. */
    std::chrono::milliseconds delay{0};
    /** Payload poison value for kCorrupt faults. */
    float corrupt_value = std::numeric_limits<float>::quiet_NaN();
    /**
     * Whether the fault models a transient condition (carried on the
     * resulting RankFailure so ranks can decide to attempt recovery).
     * Only meaningful for kKill.
     */
    bool transient = true;
};

/** One fired fault, for post-run inspection. */
struct FaultEvent {
    FaultSpec spec;
    CollectiveOp op;
};

/**
 * Holds armed faults and fires them from collective call sites. Each spec
 * fires at most once (call indices are strictly increasing per rank, so a
 * matched spec can never match again); arm several specs for repeated
 * faults. Thread-safe: collectives on different ranks probe concurrently.
 */
class FaultInjector
{
  public:
    /** Arm one fault. May be called repeatedly, including mid-run. */
    void Arm(const FaultSpec& spec);

    /**
     * Probe-and-fire hook, called by the backend at the top of every
     * collective with that rank's call index. `payload`/`count` describe
     * the collective's mutable buffer when it has one (AllReduce,
     * Broadcast), else nullptr/0 — kCorrupt faults without a mutable
     * payload are ignored. May sleep, mutate the payload, or poison
     * `world` and throw RankFailure.
     */
    void OnCollective(ThreadedWorld& world, int rank, uint64_t call_index,
                      CollectiveOp op, float* payload, size_t count);

    /** Faults fired so far, in firing order. */
    std::vector<FaultEvent> Fired() const;

    /** Number of specs armed but not yet fired. */
    size_t NumArmed() const;

    /**
     * Disarm everything and zero the per-rank call counters, so a
     * control re-run over the same injector (e.g. the unkilled half of
     * a kill-vs-control determinism test) sees virgin addressing.
     */
    void Reset();

  private:
    mutable std::mutex mutex_;
    std::vector<FaultSpec> armed_;
    std::vector<FaultEvent> fired_;
    /** Per-rank, per-op call counters for match_op specs. */
    std::map<int, std::array<uint64_t, 6>> op_counts_;
};

}  // namespace neo::comm
