#include "comm/threaded_process_group.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <functional>
#include <sstream>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/straggler.h"
#include "obs/trace.h"

namespace neo::comm {

namespace {

/**
 * Elements per local-reduction chunk. Each element's sum stays in fixed
 * rank order inside the chunk loop, so chunking over the shared pool keeps
 * reductions bit-identical to the serial loop at any thread count.
 */
constexpr size_t kReduceGrain = 4096;

}  // namespace

ThreadedWorld::ThreadedWorld(int size) : ThreadedWorld(size, Options()) {}

ThreadedWorld::ThreadedWorld(int size, Options options)
    : size_(size), options_(options)
{
    NEO_REQUIRE(size >= 1, "world size must be >= 1");
    barrier_entries_.assign(size_, 0);
    ptr_board_.assign(size_, nullptr);
    size_board_.assign(size_, 0);
    a2a_board_.assign(size_, {});
    groups_.reserve(size_);
    for (int r = 0; r < size_; r++) {
        groups_.push_back(std::make_unique<ThreadedProcessGroup>(this, r));
    }
}

ThreadedWorld::~ThreadedWorld() = default;

ProcessGroup&
ThreadedWorld::GetGroup(int rank)
{
    NEO_REQUIRE(rank >= 0 && rank < size_, "rank out of range");
    return *groups_[rank];
}

void
ThreadedWorld::AbortLocked(int rank, const std::string& cause, bool transient)
{
    if (aborted_) {
        return;  // first failure wins; later ones are secondary
    }
    aborted_ = true;
    abort_rank_ = rank;
    abort_cause_ = cause;
    abort_transient_ = transient;
    obs::MetricsRegistry::Get().GetCounter("neo.comm.aborts").Add();
    // First abort wins, so this runs exactly once per failure: leave a
    // post-mortem for the blamed rank while its rings still hold the
    // final collective it entered. Lock order is barrier_mutex_ ->
    // recorder -> registry; neither ever calls back into the world.
    auto& recorder = obs::FlightRecorder::Get();
    recorder.RecordEvent(rank, "abort", cause);
    recorder.DumpBundle(rank, cause);
    barrier_cv_.notify_all();
}

void
ThreadedWorld::Abort(int rank, const std::string& cause, bool transient)
{
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    AbortLocked(rank, cause, transient);
}

bool
ThreadedWorld::aborted() const
{
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    return aborted_;
}

int
ThreadedWorld::aborted_rank() const
{
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    return aborted_ ? abort_rank_ : -1;
}

void
ThreadedWorld::ThrowAbortedLocked() const
{
    throw RankFailure(abort_rank_, abort_cause_, abort_transient_);
}

obs::StragglerDetector&
ThreadedWorld::Detector() const
{
    return options_.detector ? *options_.detector
                             : obs::StragglerDetector::Get();
}

void
ThreadedWorld::Barrier(int rank)
{
    Barrier(rank, options_.barrier_timeout);
}

void
ThreadedWorld::Barrier(int rank, std::chrono::milliseconds timeout)
{
    NEO_TRACE_SPAN_V("barrier_wait", "barrier");
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    if (aborted_) {
        ThrowAbortedLocked();
    }
    barrier_entries_[rank]++;
    const uint64_t generation = barrier_generation_;
    // Straggler signal: how far behind the generation's first arrival
    // each rank shows up. Step wall-clock cannot localize a slow rank
    // under BSP (everyone's step stretches equally while the fast ranks
    // wait right here), but the last one through the door is exactly the
    // rank holding everyone up.
    if (barrier_waiting_ == 0) {
        barrier_first_arrival_ns_ = obs::NowNs();
        Detector().RecordArrival(rank, 0.0);
    } else {
        const double lateness =
            static_cast<double>(obs::NowNs() - barrier_first_arrival_ns_) /
            1e9;
        Detector().RecordArrival(rank, lateness);
    }
    if (++barrier_waiting_ == size_) {
        barrier_waiting_ = 0;
        barrier_generation_++;
        barrier_cv_.notify_all();
        return;
    }
    const auto released = [&] {
        return barrier_generation_ != generation || aborted_;
    };
    if (timeout.count() > 0) {
        const auto deadline = std::chrono::steady_clock::now() + timeout;
        if (!barrier_cv_.wait_until(lock, deadline, released)) {
            // Deadline expired with the barrier incomplete: blame the
            // rank that has made the least barrier progress (the absent
            // straggler) and poison the world so everyone fails alike.
            // Transient: a straggler may yet arrive, so recovery is
            // worth attempting.
            int straggler = rank;
            uint64_t fewest = barrier_entries_[rank];
            for (int r = 0; r < size_; r++) {
                if (barrier_entries_[r] < fewest) {
                    fewest = barrier_entries_[r];
                    straggler = r;
                }
            }
            std::ostringstream cause;
            cause << "barrier timeout after " << timeout.count()
                  << " ms (stuck at " << fewest << " barrier entries vs "
                  << barrier_entries_[rank] << " on detecting rank " << rank
                  << ")";
            const std::string suspect = Detector().DescribeStraggler();
            if (!suspect.empty()) {
                cause << "; " << suspect;
            }
            AbortLocked(straggler, cause.str(), /*transient=*/true);
        }
    } else {
        barrier_cv_.wait(lock, released);
    }
    // Throw only if THIS barrier is the one that failed. If the
    // generation advanced, the barrier completed (every rank entered)
    // before or concurrently with the abort; this rank must report
    // success and let the next collective's entry check fail instead.
    // Throwing retroactively out of a completed barrier would desync the
    // retry schedule: this rank would replay a step its peers consider
    // finished, and the off-by-one lineup deadlocks the world later.
    if (barrier_generation_ == generation && aborted_) {
        ThrowAbortedLocked();
    }
}

bool
ThreadedWorld::TryRecover(std::chrono::milliseconds timeout)
{
    NEO_TRACE_SPAN("recover", "comm");
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    if (!aborted_) {
        return true;
    }
    const uint64_t generation = recover_generation_;
    if (++recover_waiting_ == size_) {
        recover_waiting_ = 0;
        recover_generation_++;
        obs::FlightRecorder::Get().RecordEvent(
            abort_rank_, "recover", "world recovered after: " + abort_cause_);
        // Full world rendezvoused: clear the poison and restart barrier
        // state so the next collective begins from a clean slate. Entry
        // counters reset too — ranks aborted a multi-barrier collective
        // at different depths, and stale counts would misname stragglers.
        aborted_ = false;
        abort_rank_ = -1;
        abort_cause_.clear();
        abort_transient_ = false;
        barrier_waiting_ = 0;
        barrier_generation_++;
        std::fill(barrier_entries_.begin(), barrier_entries_.end(), 0);
        obs::MetricsRegistry::Get().GetCounter("neo.comm.recoveries").Add();
        barrier_cv_.notify_all();
        return true;
    }
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    const bool recovered = barrier_cv_.wait_until(
        lock, deadline, [&] { return recover_generation_ != generation; });
    if (!recovered) {
        recover_waiting_--;
    }
    return recovered;
}

ThreadedWorld::ShrinkResult
ThreadedWorld::ShrinkAfterFailure(int rank, std::chrono::milliseconds timeout)
{
    NEO_TRACE_SPAN("shrink_world", "recovery");
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    NEO_REQUIRE(aborted_,
                "ShrinkAfterFailure requires a poisoned world (a declared "
                "dead rank)");
    NEO_REQUIRE(size_ >= 2, "cannot shrink a single-rank world");
    NEO_REQUIRE(rank >= 0 && rank < size_ && rank != abort_rank_,
                "only survivors may join a shrink rendezvous");

    ShrinkResult result;
    const uint64_t generation = shrink_generation_;
    shrink_arrived_.push_back(rank);

    // Seal the forming cohort from whoever arrived: sort the members so
    // child ranks compact in old-rank order, and build the child world
    // with no injector — any armed fault specs address ranks in the OLD
    // numbering and would fire at wrong points in the compacted one.
    const auto seal = [&] {
        ShrinkCohort cohort;
        cohort.members = std::move(shrink_arrived_);
        shrink_arrived_.clear();
        std::sort(cohort.members.begin(), cohort.members.end());
        Options child_options = options_;
        child_options.injector = nullptr;
        cohort.world = std::make_unique<ThreadedWorld>(
            static_cast<int>(cohort.members.size()), child_options);
        shrink_cohorts_.push_back(std::move(cohort));
        shrink_generation_++;
        obs::MetricsRegistry::Get().GetCounter("neo.comm.shrinks").Add();
        obs::FlightRecorder::Get().RecordEvent(
            abort_rank_, "shrink",
            "survivor cohort of " +
                std::to_string(shrink_cohorts_.back().members.size()) +
                " sealed after: " + abort_cause_);
        barrier_cv_.notify_all();
    };

    if (shrink_arrived_.size() == static_cast<size_t>(size_) - 1) {
        // Every possible survivor is here (exactly one rank died): seal
        // immediately, no deadline paid.
        seal();
    } else {
        const auto deadline = std::chrono::steady_clock::now() + timeout;
        const bool sealed = barrier_cv_.wait_until(
            lock, deadline,
            [&] { return shrink_generation_ != generation; });
        if (!sealed) {
            // Deadline expired with the cohort still open — the k >= 2
            // dead-ranks case, where the all-survivors count can never be
            // reached. The first waiter to wake seals the cohort from the
            // ranks that did arrive (later timed-out waiters see the
            // generation advanced and land in the same cohort)... unless
            // this rank is alone, which is indistinguishable from a total
            // loss: back out and report failure.
            if (shrink_arrived_.size() < 2) {
                shrink_arrived_.erase(
                    std::find(shrink_arrived_.begin(),
                              shrink_arrived_.end(), rank));
                auto& recorder = obs::FlightRecorder::Get();
                const std::string detail =
                    "shrink rendezvous found no peers within " +
                    std::to_string(timeout.count()) + " ms (after: " +
                    abort_cause_ + ")";
                recorder.RecordEvent(rank, "shrink_failed", detail);
                recorder.DumpBundle(rank, detail);
                return result;  // ok = false
            }
            seal();
        }
    }

    // Look up this rank's cohort — index by the arrival generation rather
    // than "latest" so a later shrink round can't hand a slow waiter the
    // wrong world.
    const ShrinkCohort& cohort = shrink_cohorts_[generation];
    const auto member = std::find(cohort.members.begin(),
                                  cohort.members.end(), rank);
    NEO_REQUIRE(member != cohort.members.end(),
                "shrink cohort sealed without rank ", rank,
                " despite its arrival");
    result.ok = true;
    result.new_rank = static_cast<int>(member - cohort.members.begin());
    result.new_size = static_cast<int>(cohort.members.size());
    result.group = &cohort.world->GetGroup(result.new_rank);
    return result;
}

void
ThreadedWorld::Run(int size, const std::function<void(int, ProcessGroup&)>& fn)
{
    Run(size, Options{}, fn);
}

void
ThreadedWorld::Run(int size, const Options& options,
                   const std::function<void(int, ProcessGroup&)>& fn)
{
    ThreadedWorld world(size, options);
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(size);
    threads.reserve(size);
    for (int r = 0; r < size; r++) {
        threads.emplace_back([&, r] {
            try {
                // Tag the worker thread so its trace spans carry the rank.
                obs::Tracer::SetThreadRank(r);
                fn(r, world.GetGroup(r));
            } catch (const std::exception& e) {
                errors[r] = std::current_exception();
                // Poison the world so peers unblock with RankFailure
                // instead of hanging at their next barrier. No-op if the
                // world is already poisoned (this is a secondary failure).
                world.Abort(r, e.what());
            } catch (...) {
                errors[r] = std::current_exception();
                world.Abort(r, "unknown exception");
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    // Rethrow the originating rank's exception in preference to the
    // secondary RankFailures it caused on other ranks.
    const int origin = world.aborted_rank();
    if (origin >= 0 && errors[origin]) {
        std::rethrow_exception(errors[origin]);
    }
    for (auto& e : errors) {
        if (e) {
            std::rethrow_exception(e);
        }
    }
}

obs::StragglerVerdict
ThreadedWorld::AnalyzeStragglers() const
{
    return Detector().Analyze();
}

void
ThreadedProcessGroup::MaybeInject(CollectiveOp op, float* payload,
                                  size_t count)
{
    const uint64_t seq = collective_seq_++;
    // Flight-record the op BEFORE the injector gets a chance to kill this
    // rank: a killed rank's last ring entry then names the kill site.
    obs::FlightRecorder::Get().RecordOp(rank_, CollectiveOpName(op),
                                        obs::NowNs());
    FaultInjector* injector = world_->options_.injector;
    if (injector != nullptr) {
        injector->OnCollective(*world_, rank_, seq, op, payload, count);
    }
}

void
ThreadedProcessGroup::Barrier()
{
    NEO_TRACE_SPAN("barrier", "barrier");
    MaybeInject(CollectiveOp::kBarrier, nullptr, 0);
    world_->Barrier(rank_);
    stats_.calls++;
}

void
ThreadedProcessGroup::Barrier(std::chrono::milliseconds timeout)
{
    NEO_TRACE_SPAN("barrier", "barrier");
    MaybeInject(CollectiveOp::kBarrier, nullptr, 0);
    world_->Barrier(rank_, timeout);
    stats_.calls++;
}

void
ThreadedProcessGroup::AllReduceSum(float* data, size_t count)
{
    NEO_TRACE_SPAN("allreduce", "allreduce");
    const int64_t t0 = obs::NowNs();
    ThreadedWorld& w = *world_;
    MaybeInject(CollectiveOp::kAllReduce, data, count);
    if (w.size() > 1 && count > 0) {
        w.ptr_board_[rank_] = data;
        w.size_board_[rank_] = count;
        w.Barrier(rank_);  // pointers published

        if (rank_ == 0) {
            for (int r = 1; r < w.size(); r++) {
                NEO_CHECK(w.size_board_[r] == count,
                          "AllReduce count mismatch across ranks");
            }
            w.reduce_scratch_.resize(count);
        }
        w.Barrier(rank_);  // scratch sized

        // Reduce-scatter phase: this rank owns chunk `rank_` and
        // accumulates it in rank order for determinism. The owned range is
        // further chunked across the shared pool; ranks write disjoint
        // scratch ranges, so intra-op workers compose with the inter-rank
        // threads.
        const size_t n = static_cast<size_t>(w.size());
        const size_t begin = count * static_cast<size_t>(rank_) / n;
        const size_t end = count * static_cast<size_t>(rank_ + 1) / n;
        ParallelFor(begin, end, kReduceGrain, [&](size_t cb, size_t ce) {
            for (size_t i = cb; i < ce; i++) {
                float sum = 0.0f;
                for (int r = 0; r < w.size(); r++) {
                    sum += static_cast<const float*>(w.ptr_board_[r])[i];
                }
                w.reduce_scratch_[i] = sum;
            }
        });
        w.Barrier(rank_);  // scratch complete

        // All-gather phase: everyone copies the full reduced vector.
        std::memcpy(data, w.reduce_scratch_.data(), count * sizeof(float));
        w.Barrier(rank_);  // boards free for reuse
    } else {
        // A zero-length (or single-rank) reduce still synchronizes
        // (collectives are barriers), but moves no data.
        w.Barrier(rank_);
    }
    // Stats and traces account completed collectives only; an aborted
    // collective throws above and must not be double-counted on retry.
    Book(CollectiveOp::kAllReduce, &stats_.allreduce_bytes,
         count * sizeof(float), count * sizeof(float), t0);
}

void
ThreadedProcessGroup::Broadcast(float* data, size_t count, int root)
{
    NEO_TRACE_SPAN("broadcast", "comm");
    const int64_t t0 = obs::NowNs();
    ThreadedWorld& w = *world_;
    NEO_REQUIRE(root >= 0 && root < w.size(), "broadcast root out of range");
    MaybeInject(CollectiveOp::kBroadcast, data, count);
    if (w.size() > 1 && count > 0) {
        w.ptr_board_[rank_] = data;
        w.size_board_[rank_] = count;
        w.Barrier(rank_);

        if (rank_ != root) {
            NEO_CHECK(w.size_board_[root] == count,
                      "Broadcast count mismatch");
            std::memcpy(data, w.ptr_board_[root], count * sizeof(float));
        }
        w.Barrier(rank_);
    } else {
        // Zero-length broadcast synchronizes without touching `data`,
        // which may legitimately be null.
        w.Barrier(rank_);
    }
    Book(CollectiveOp::kBroadcast, &stats_.broadcast_bytes,
         rank_ == root ? count * sizeof(float) : 0, count * sizeof(float),
         t0);
}

void
ThreadedProcessGroup::AllGather(const float* in, size_t count, float* out)
{
    NEO_TRACE_SPAN("allgather", "comm");
    const int64_t t0 = obs::NowNs();
    ThreadedWorld& w = *world_;
    MaybeInject(CollectiveOp::kAllGather, nullptr, 0);
    if (count > 0) {
        w.ptr_board_[rank_] = in;
        w.size_board_[rank_] = count;
        w.Barrier(rank_);

        for (int r = 0; r < w.size(); r++) {
            NEO_CHECK(w.size_board_[r] == count, "AllGather count mismatch");
            std::memcpy(out + static_cast<size_t>(r) * count,
                        w.ptr_board_[r], count * sizeof(float));
        }
        w.Barrier(rank_);
    } else {
        // Zero-length gather synchronizes; `in`/`out` may be null.
        w.Barrier(rank_);
    }
    Book(CollectiveOp::kAllGather, &stats_.allgather_bytes,
         count * sizeof(float), count * sizeof(float), t0);
}

void
ThreadedProcessGroup::ReduceScatterSum(const float* in, size_t count,
                                       float* out)
{
    NEO_TRACE_SPAN("reducescatter", "comm");
    const int64_t t0 = obs::NowNs();
    ThreadedWorld& w = *world_;
    MaybeInject(CollectiveOp::kReduceScatter, nullptr, 0);
    if (count > 0) {
        w.ptr_board_[rank_] = in;
        w.size_board_[rank_] = count;
        w.Barrier(rank_);

        // Validate the shared-count invariant once, not per element.
        for (int r = 0; r < w.size(); r++) {
            NEO_CHECK(w.size_board_[r] == count,
                      "ReduceScatter count mismatch");
        }
        const size_t offset = static_cast<size_t>(rank_) * count;
        ParallelFor(0, count, kReduceGrain, [&](size_t cb, size_t ce) {
            for (size_t i = cb; i < ce; i++) {
                float sum = 0.0f;
                for (int r = 0; r < w.size(); r++) {
                    sum += static_cast<const float*>(
                        w.ptr_board_[r])[offset + i];
                }
                out[i] = sum;
            }
        });
        w.Barrier(rank_);
    } else {
        // Zero-length reduce-scatter synchronizes; buffers may be null.
        w.Barrier(rank_);
    }
    Book(CollectiveOp::kReduceScatter, &stats_.reducescatter_bytes,
         count * sizeof(float) * static_cast<size_t>(w.size()),
         count * sizeof(float) * static_cast<size_t>(w.size()), t0);
}

void
ThreadedProcessGroup::AllToAllBytes(
    const std::vector<std::vector<uint8_t>>& send_buffers,
    std::vector<std::vector<uint8_t>>& recv_buffers)
{
    NEO_TRACE_SPAN("alltoall", "a2a");
    const int64_t t0 = obs::NowNs();
    ThreadedWorld& w = *world_;
    NEO_REQUIRE(send_buffers.size() == static_cast<size_t>(w.size()),
                "AllToAll needs one send buffer per rank");
    MaybeInject(CollectiveOp::kAllToAll, nullptr, 0);
    uint64_t total_send = 0;
    uint64_t offrank_send = 0;
    for (int r = 0; r < w.size(); r++) {
        total_send += send_buffers[r].size();
        if (r != rank_) {
            offrank_send += send_buffers[r].size();
        }
    }

    auto& my_slots = w.a2a_board_[rank_];
    my_slots.resize(w.size());
    for (int r = 0; r < w.size(); r++) {
        my_slots[r] = {send_buffers[r].data(), send_buffers[r].size()};
    }
    w.Barrier(rank_);

    recv_buffers.assign(w.size(), {});
    for (int src = 0; src < w.size(); src++) {
        const auto& [ptr, len] = w.a2a_board_[src][rank_];
        // Empty slots stay empty; `ptr` may be null for an empty vector
        // and must not feed pointer arithmetic.
        if (len > 0) {
            recv_buffers[src].assign(ptr, ptr + len);
        }
    }
    w.Barrier(rank_);

    Book(CollectiveOp::kAllToAll, &stats_.alltoall_bytes, offrank_send,
         total_send, t0);
}

bool
ThreadedProcessGroup::Recover(std::chrono::milliseconds timeout)
{
    return world_->TryRecover(timeout);
}

void
ThreadedProcessGroup::Book(CollectiveOp op, uint64_t* stat_field,
                           uint64_t stat_bytes, uint64_t trace_bytes,
                           int64_t start_ns)
{
    stats_.calls++;
    *stat_field += stat_bytes;
    last_stat_field_ = stat_field;
    last_stat_bytes_ = stat_bytes;
    last_traced_ = false;
    const size_t op_index = static_cast<size_t>(op);
    std::vector<TraceEvent>* trace =
        trace_.load(std::memory_order_acquire);
    if (trace != nullptr) {
        TraceEvent event;
        event.op = op;
        event.bytes = trace_bytes;
        event.start_ns = start_ns;
        event.duration_ns = obs::NowNs() - start_ns;
        event.seq = op_seq_[op_index];
        trace->push_back(event);
        last_traced_ = true;
    }
    op_seq_[op_index]++;
}

void
ThreadedProcessGroup::RebookLastCollective(uint64_t wire_bytes)
{
    if (last_stat_field_ == nullptr) {
        return;
    }
    *last_stat_field_ = *last_stat_field_ - last_stat_bytes_ + wire_bytes;
    last_stat_bytes_ = wire_bytes;
    std::vector<TraceEvent>* trace =
        trace_.load(std::memory_order_acquire);
    if (last_traced_ && trace != nullptr && !trace->empty()) {
        trace->back().bytes = wire_bytes;
    }
}

}  // namespace neo::comm
