#include "comm/threaded_process_group.h"

#include <cstring>
#include <exception>
#include <functional>

#include "common/logging.h"

namespace neo::comm {

ThreadedWorld::ThreadedWorld(int size) : size_(size)
{
    NEO_REQUIRE(size >= 1, "world size must be >= 1");
    ptr_board_.assign(size_, nullptr);
    size_board_.assign(size_, 0);
    a2a_board_.assign(size_, {});
    groups_.reserve(size_);
    for (int r = 0; r < size_; r++) {
        groups_.push_back(std::make_unique<ThreadedProcessGroup>(this, r));
    }
}

ThreadedWorld::~ThreadedWorld() = default;

ProcessGroup&
ThreadedWorld::GetGroup(int rank)
{
    NEO_REQUIRE(rank >= 0 && rank < size_, "rank out of range");
    return *groups_[rank];
}

void
ThreadedWorld::Barrier()
{
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    const uint64_t generation = barrier_generation_;
    if (++barrier_waiting_ == size_) {
        barrier_waiting_ = 0;
        barrier_generation_++;
        barrier_cv_.notify_all();
        return;
    }
    barrier_cv_.wait(lock,
                     [&] { return barrier_generation_ != generation; });
}

void
ThreadedWorld::Run(int size, const std::function<void(int, ProcessGroup&)>& fn)
{
    ThreadedWorld world(size);
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(size);
    threads.reserve(size);
    for (int r = 0; r < size; r++) {
        threads.emplace_back([&, r] {
            try {
                fn(r, world.GetGroup(r));
            } catch (...) {
                errors[r] = std::current_exception();
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    for (auto& e : errors) {
        if (e) {
            std::rethrow_exception(e);
        }
    }
}

void
ThreadedProcessGroup::Barrier()
{
    stats_.calls++;
    world_->Barrier();
}

void
ThreadedProcessGroup::AllReduceSum(float* data, size_t count)
{
    ThreadedWorld& w = *world_;
    stats_.calls++;
    stats_.allreduce_bytes += count * sizeof(float);
    Record(CollectiveOp::kAllReduce, count * sizeof(float));
    if (w.size() == 1 || count == 0) {
        // A zero-length reduce still synchronizes (collectives are
        // barriers), but moves no data.
        w.Barrier();
        return;
    }

    w.ptr_board_[rank_] = data;
    w.size_board_[rank_] = count;
    w.Barrier();  // pointers published

    if (rank_ == 0) {
        for (int r = 1; r < w.size(); r++) {
            NEO_CHECK(w.size_board_[r] == count,
                      "AllReduce count mismatch across ranks");
        }
        w.reduce_scratch_.resize(count);
    }
    w.Barrier();  // scratch sized

    // Reduce-scatter phase: this rank owns chunk `rank_` and accumulates it
    // in rank order for determinism.
    const size_t n = static_cast<size_t>(w.size());
    const size_t begin = count * static_cast<size_t>(rank_) / n;
    const size_t end = count * static_cast<size_t>(rank_ + 1) / n;
    for (size_t i = begin; i < end; i++) {
        float sum = 0.0f;
        for (int r = 0; r < w.size(); r++) {
            sum += static_cast<const float*>(w.ptr_board_[r])[i];
        }
        w.reduce_scratch_[i] = sum;
    }
    w.Barrier();  // scratch complete

    // All-gather phase: everyone copies the full reduced vector.
    std::memcpy(data, w.reduce_scratch_.data(), count * sizeof(float));
    w.Barrier();  // boards free for reuse
}

void
ThreadedProcessGroup::Broadcast(float* data, size_t count, int root)
{
    ThreadedWorld& w = *world_;
    NEO_REQUIRE(root >= 0 && root < w.size(), "broadcast root out of range");
    stats_.calls++;
    if (rank_ == root) {
        stats_.broadcast_bytes += count * sizeof(float);
    }
    Record(CollectiveOp::kBroadcast, count * sizeof(float));
    if (w.size() == 1) {
        return;
    }

    w.ptr_board_[rank_] = data;
    w.size_board_[rank_] = count;
    w.Barrier();

    if (rank_ != root) {
        NEO_CHECK(w.size_board_[root] == count,
                  "Broadcast count mismatch");
        std::memcpy(data, w.ptr_board_[root], count * sizeof(float));
    }
    w.Barrier();
}

void
ThreadedProcessGroup::AllGather(const float* in, size_t count, float* out)
{
    ThreadedWorld& w = *world_;
    stats_.calls++;
    stats_.allgather_bytes += count * sizeof(float);
    Record(CollectiveOp::kAllGather, count * sizeof(float));

    w.ptr_board_[rank_] = in;
    w.size_board_[rank_] = count;
    w.Barrier();

    for (int r = 0; r < w.size(); r++) {
        NEO_CHECK(w.size_board_[r] == count, "AllGather count mismatch");
        std::memcpy(out + static_cast<size_t>(r) * count, w.ptr_board_[r],
                    count * sizeof(float));
    }
    w.Barrier();
}

void
ThreadedProcessGroup::ReduceScatterSum(const float* in, size_t count,
                                       float* out)
{
    ThreadedWorld& w = *world_;
    stats_.calls++;
    stats_.reducescatter_bytes += count * sizeof(float) *
                                  static_cast<size_t>(w.size());
    Record(CollectiveOp::kReduceScatter,
           count * sizeof(float) * static_cast<size_t>(w.size()));

    w.ptr_board_[rank_] = in;
    w.size_board_[rank_] = count;
    w.Barrier();

    const size_t offset = static_cast<size_t>(rank_) * count;
    for (size_t i = 0; i < count; i++) {
        float sum = 0.0f;
        for (int r = 0; r < w.size(); r++) {
            NEO_CHECK(w.size_board_[r] == count,
                      "ReduceScatter count mismatch");
            sum += static_cast<const float*>(w.ptr_board_[r])[offset + i];
        }
        out[i] = sum;
    }
    w.Barrier();
}

void
ThreadedProcessGroup::AllToAllBytes(
    const std::vector<std::vector<uint8_t>>& send_buffers,
    std::vector<std::vector<uint8_t>>& recv_buffers)
{
    ThreadedWorld& w = *world_;
    NEO_REQUIRE(send_buffers.size() == static_cast<size_t>(w.size()),
                "AllToAll needs one send buffer per rank");
    stats_.calls++;
    uint64_t total_send = 0;
    for (int r = 0; r < w.size(); r++) {
        total_send += send_buffers[r].size();
        if (r != rank_) {
            stats_.alltoall_bytes += send_buffers[r].size();
        }
    }
    Record(CollectiveOp::kAllToAll, total_send);

    auto& my_slots = w.a2a_board_[rank_];
    my_slots.resize(w.size());
    for (int r = 0; r < w.size(); r++) {
        my_slots[r] = {send_buffers[r].data(), send_buffers[r].size()};
    }
    w.Barrier();

    recv_buffers.assign(w.size(), {});
    for (int src = 0; src < w.size(); src++) {
        const auto& [ptr, len] = w.a2a_board_[src][rank_];
        recv_buffers[src].assign(ptr, ptr + len);
    }
    w.Barrier();
}

}  // namespace neo::comm
