#include "comm/process_group.h"

#include <cstring>

namespace neo::comm {

RankFailure::RankFailure(int failed_rank, std::string cause, bool transient)
    : std::runtime_error("rank " + std::to_string(failed_rank) +
                         " failed: " + cause),
      failed_rank_(failed_rank), cause_(std::move(cause)),
      transient_(transient)
{
}

const char*
CollectiveOpName(CollectiveOp op)
{
    switch (op) {
      case CollectiveOp::kAllReduce: return "allreduce";
      case CollectiveOp::kAllGather: return "allgather";
      case CollectiveOp::kReduceScatter: return "reducescatter";
      case CollectiveOp::kAllToAll: return "alltoall";
      case CollectiveOp::kBroadcast: return "broadcast";
      case CollectiveOp::kBarrier: return "barrier";
    }
    return "unknown";
}

namespace {

template <typename T>
void
TypedAllToAll(ProcessGroup& pg, const std::vector<std::vector<T>>& send,
              std::vector<std::vector<T>>& recv)
{
    std::vector<std::vector<uint8_t>> send_bytes(send.size());
    for (size_t r = 0; r < send.size(); r++) {
        send_bytes[r].resize(send[r].size() * sizeof(T));
        std::memcpy(send_bytes[r].data(), send[r].data(),
                    send_bytes[r].size());
    }
    std::vector<std::vector<uint8_t>> recv_bytes;
    pg.AllToAllBytes(send_bytes, recv_bytes);
    recv.resize(recv_bytes.size());
    for (size_t r = 0; r < recv_bytes.size(); r++) {
        recv[r].resize(recv_bytes[r].size() / sizeof(T));
        std::memcpy(recv[r].data(), recv_bytes[r].data(),
                    recv_bytes[r].size());
    }
}

}  // namespace

void
ProcessGroup::AllToAllFloats(const std::vector<std::vector<float>>& send,
                             std::vector<std::vector<float>>& recv)
{
    TypedAllToAll(*this, send, recv);
}

void
ProcessGroup::AllToAllIndices(const std::vector<std::vector<int64_t>>& send,
                              std::vector<std::vector<int64_t>>& recv)
{
    TypedAllToAll(*this, send, recv);
}

void
ProcessGroup::AllToAllLengths(const std::vector<std::vector<uint32_t>>& send,
                              std::vector<std::vector<uint32_t>>& recv)
{
    TypedAllToAll(*this, send, recv);
}

}  // namespace neo::comm
